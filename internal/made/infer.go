package made

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Inference fast path. Progressive sampling calls CondBatch with col = 0, 1,
// 2, ... over one fixed batch; between successive calls the only change to
// the network input is that column col-1's block, previously zero, now holds
// the freshly sampled codes. The masks bound how far that change can reach:
// column i's input block has degree i+1, and a unit anywhere in the trunk
// with degree d only sees inputs of degree <= d, so revealing column col-1
// leaves every unit with degree < col bit-for-bit unchanged — in every layer.
// New sorts each layer's degrees ascending, making the changed units a
// contiguous suffix [hidStart[l][col], width), and the walk maintains the
// per-layer post-ReLU activations by refreshing only those windows:
//
//	h1pre[:, s0:]  += W1[inOff:inOff+inW, s0:] · Δx      (delta, accumulated)
//	post[0][:, s0:] = relu(h1pre[:, s0:])
//	post[l][:, sl:] = relu(post[l-1] · Wl[:, sl:] + bl[sl:])   for l >= 1
//
// Only layer 1 needs the pre-activation cache (its input changes by a sparse
// delta worth one Axpy per tuple); deeper layers rerun their window densely
// through the packed column-sliced kernel, reading the already-current
// post[l-1]. One-hot columns contribute a single weight row per tuple;
// embedded columns contribute inW (=EmbedDim) rows scaled by the embedding
// vector. The column's head slice and decode still run densely. The full
// forward path is kept verbatim as the reference (and the fallback for
// out-of-sequence calls); tests assert the two agree.

// sampState tracks one in-flight sampling walk (strictly sequential via
// CondBatch, or block-granular with skips and tail retirement via
// AdvanceBlock/DecodeBlock in block.go).
type sampState struct {
	active      bool
	n           int // batch size announced by BeginSampling
	nextCol     int // lowest column the walk will accept next
	lastDecoded int // column decoded but not yet folded; -1 when none

	h1pre *tensor.Matrix   // n × W1 first-layer pre-activations (bias included)
	post  []*tensor.Matrix // n × Wl post-ReLU activations, one per hidden layer

	// refreshed[l] is the first unit of hidden layer l (l ≥ 1) whose cached
	// activation is stale; units below it are current for the folds applied
	// so far. Layer 0 is kept fully current by the fold itself.
	refreshed []int

	// zeroH1/zeroPost snapshot the zero-input trunk forward — the state every
	// walk starts from. BeginSampling replays the snapshot instead of
	// rerunning the trunk per block (bit-identical: the same values are
	// broadcast either way). Training drops it along with the packs.
	zeroH1   []float32
	zeroPost [][]float32

	// vFold/vCur/vPrev/vHid are pooled row-window view headers: the
	// sequential walk mutates these in place instead of allocating a Matrix
	// header per GEMM call, which keeps the steady-state block walk
	// allocation-free. The concurrent row-range entries (AdvanceRows, and
	// DecodeBlock after PrepareDecode) use stack-local headers instead, so
	// disjoint ranges never share them.
	vFold, vEmb, vCur, vPrev, vHid tensor.Matrix

	// decodeShared is set by PrepareDecode: the decode scratch is pre-sized
	// for the full walk height and DecodeBlock switches to offset-addressed
	// row windows, making concurrent disjoint-range decodes safe. Cleared by
	// the next advance or BeginSampling.
	decodeShared bool
}

// viewRows points dst at rows [r0, r1) of src (shared storage, no copy).
func viewRows(dst *tensor.Matrix, src *tensor.Matrix, r0, r1 int) *tensor.Matrix {
	dst.Rows, dst.Cols = r1-r0, src.Cols
	dst.Data = src.Data[r0*src.Cols : r1*src.Cols]
	return dst
}

// inferScratch holds buffers reused across CondBatch calls. Everything here
// is per-model state: replicas made with Fork get their own.
type inferScratch struct {
	head   *tensor.Matrix // column head-slice output
	logits *tensor.Matrix // decoded logits for embedded columns
	embA   *tensor.Matrix // gathered embedding rows for the fold GEMM
}

// BeginSampling implements core.SequentialModel: it arms the delta-forward
// cache for a walk of columns 0..NumCols()-1 over a batch of n tuples.
func (m *Model) BeginSampling(n int) {
	L := len(m.trunk.Layers) / 2
	s := &m.samp
	// Reshape the activation caches reusing their backing storage: fused
	// serving begins walks of alternating heights (full blocks, then the
	// batch tail), and reallocating multi-MB activation stacks per block was
	// the dominant cost of the fused path at one worker.
	if len(s.post) != L {
		s.post = make([]*tensor.Matrix, L)
	}
	for l := 0; l < L; l++ {
		s.post[l] = resizeMat(s.post[l], n, m.trunk.Layers[2*l].(*nn.Linear).W.Val.Cols)
	}
	s.h1pre = resizeMat(s.h1pre, n, s.post[0].Cols)
	// Column 0 sees an all-zero input, so every row of the batch starts from
	// identical activations: run the trunk once over a single zero row (views
	// into row 0 of the caches), snapshot it, and broadcast the result down
	// the batch. Later walks replay the snapshot — the trunk's zero-input
	// forward depends only on the weights, so the replay is bit-identical and
	// skips a pack+GEMM pass per layer per block.
	if n > 0 {
		if s.zeroH1 == nil {
			h1 := m.firstLinear()
			row := m.rowView(s.h1pre)
			copy(row.Data, h1.B.Val.Data)
			prev := m.rowView(s.post[0])
			for j, v := range row.Data {
				if v > 0 {
					prev.Data[j] = v
				} else {
					prev.Data[j] = 0
				}
			}
			for l := 1; l < L; l++ {
				lin := m.trunk.Layers[2*l].(*nn.Linear)
				cur := m.rowView(s.post[l])
				tensor.LinearReLU(cur, prev, lin.W.Val, lin.B.Val.Data, true)
				prev = cur
			}
			s.zeroH1 = append(s.zeroH1[:0], s.h1pre.Data[:s.h1pre.Cols]...)
			s.zeroPost = s.zeroPost[:0]
			for l := 0; l < L; l++ {
				s.zeroPost = append(s.zeroPost, append([]float32(nil), s.post[l].Data[:s.post[l].Cols]...))
			}
		} else {
			copy(s.h1pre.Data[:s.h1pre.Cols], s.zeroH1)
			for l := 0; l < L; l++ {
				copy(s.post[l].Data[:s.post[l].Cols], s.zeroPost[l])
			}
		}
		broadcastRow0(s.h1pre)
		for l := 0; l < L; l++ {
			broadcastRow0(s.post[l])
		}
	}
	s.active = true
	s.n = n
	s.nextCol = 0
	s.lastDecoded = -1
	s.decodeShared = false
	// Everything is current for the zero-fold state the broadcast just built.
	if cap(m.samp.refreshed) < L {
		m.samp.refreshed = make([]int, L)
	}
	m.samp.refreshed = m.samp.refreshed[:L]
	for l := 0; l < L; l++ {
		m.samp.refreshed[l] = m.samp.post[l].Cols
	}
}

// rowView wraps row 0 of mat as a 1×Cols matrix sharing its storage.
func (m *Model) rowView(mat *tensor.Matrix) *tensor.Matrix {
	return tensor.FromSlice(1, mat.Cols, mat.Data[:mat.Cols])
}

// broadcastRow0 copies row 0 of mat into every other row.
func broadcastRow0(mat *tensor.Matrix) {
	row0 := mat.Data[:mat.Cols]
	for r := 1; r < mat.Rows; r++ {
		copy(mat.Row(r), row0)
	}
}

// firstLinear returns the trunk's first masked layer.
func (m *Model) firstLinear() *nn.Linear { return m.trunk.Layers[0].(*nn.Linear) }

// trunkTail runs trunk layers after the first Linear+ReLU pair with the
// fused inference kernels.
func (m *Model) trunkTail(h *tensor.Matrix) *tensor.Matrix {
	for i := 2; i < len(m.trunk.Layers); i += 2 {
		h = m.trunk.Layers[i].(*nn.Linear).InferForward(h, true)
	}
	return h
}

// inferTrunk runs the whole trunk with fused kernels (full-forward inference
// path; training keeps trunk.Forward so activations are cached for backward).
func (m *Model) inferTrunk(x *tensor.Matrix) *tensor.Matrix {
	h := m.firstLinear().InferForward(x, true)
	return m.trunkTail(h)
}

// Fork returns a replica that shares every parameter with m but owns its own
// activation scratch and sampling state, so replicas can serve CondBatch and
// LogProbBatch concurrently (one replica per goroutine). Forks are for
// inference: training through a fork corrupts the shared gradients.
func (m *Model) Fork() *Model {
	f := &Model{
		cfg:      m.cfg,
		domains:  m.domains,
		codecs:   append([]colCodec(nil), m.codecs...),
		inDim:    m.inDim,
		headDim:  m.headDim,
		trunk:    m.trunk.ShareWeights(),
		head:     m.head.ShareWeights(),
		params:   m.params,
		hidStart: m.hidStart,
	}
	return f
}

// ForkModel implements core.Forkable (returning any keeps this package from
// importing core; the estimator asserts the replica back to core.Model).
func (m *Model) ForkModel() any { return m.Fork() }
