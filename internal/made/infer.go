package made

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Inference fast path. Progressive sampling calls CondBatch with col = 0, 1,
// 2, ... over one fixed batch; between successive calls the only change to
// the network input is that column col-1's block, previously zero, now holds
// the freshly sampled codes. The masks bound how far that change can reach:
// column i's input block has degree i+1, and a unit anywhere in the trunk
// with degree d only sees inputs of degree <= d, so revealing column col-1
// leaves every unit with degree < col bit-for-bit unchanged — in every layer.
// New sorts each layer's degrees ascending, making the changed units a
// contiguous suffix [hidStart[l][col], width), and the walk maintains the
// per-layer post-ReLU activations by refreshing only those windows:
//
//	h1pre[:, s0:]  += W1[inOff:inOff+inW, s0:] · Δx      (delta, accumulated)
//	post[0][:, s0:] = relu(h1pre[:, s0:])
//	post[l][:, sl:] = relu(post[l-1] · Wl[:, sl:] + bl[sl:])   for l >= 1
//
// Only layer 1 needs the pre-activation cache (its input changes by a sparse
// delta worth one Axpy per tuple); deeper layers rerun their window densely
// through the packed column-sliced kernel, reading the already-current
// post[l-1]. One-hot columns contribute a single weight row per tuple;
// embedded columns contribute inW (=EmbedDim) rows scaled by the embedding
// vector. The column's head slice and decode still run densely. The full
// forward path is kept verbatim as the reference (and the fallback for
// out-of-sequence calls); tests assert the two agree.

// sampState tracks one in-flight sequential sampling walk.
type sampState struct {
	active  bool
	n       int // batch size announced by BeginSampling
	nextCol int // next column the walk must ask for

	h1pre *tensor.Matrix   // n × W1 first-layer pre-activations (bias included)
	post  []*tensor.Matrix // n × Wl post-ReLU activations, one per hidden layer
}

// inferScratch holds buffers reused across CondBatch calls. Everything here
// is per-model state: replicas made with Fork get their own.
type inferScratch struct {
	head   *tensor.Matrix // column head-slice output
	logits *tensor.Matrix // decoded logits for embedded columns
}

// BeginSampling implements core.SequentialModel: it arms the delta-forward
// cache for a walk of columns 0..NumCols()-1 over a batch of n tuples.
func (m *Model) BeginSampling(n int) {
	L := len(m.trunk.Layers) / 2
	if len(m.samp.post) != L || (n > 0 && m.samp.post[0].Rows != n) {
		m.samp.post = make([]*tensor.Matrix, L)
		for l := 0; l < L; l++ {
			m.samp.post[l] = tensor.New(n, m.trunk.Layers[2*l].(*nn.Linear).W.Val.Cols)
		}
		m.samp.h1pre = tensor.New(n, m.samp.post[0].Cols)
	}
	// Column 0 sees an all-zero input, so every row of the batch starts from
	// identical activations: run the trunk once over a single zero row (views
	// into row 0 of the caches) and broadcast the result down the batch.
	if n > 0 {
		h1 := m.firstLinear()
		row := m.rowView(m.samp.h1pre)
		copy(row.Data, h1.B.Val.Data)
		prev := m.rowView(m.samp.post[0])
		for j, v := range row.Data {
			if v > 0 {
				prev.Data[j] = v
			} else {
				prev.Data[j] = 0
			}
		}
		for l := 1; l < L; l++ {
			lin := m.trunk.Layers[2*l].(*nn.Linear)
			cur := m.rowView(m.samp.post[l])
			tensor.LinearReLU(cur, prev, lin.W.Val, lin.B.Val.Data, true)
			prev = cur
		}
		broadcastRow0(m.samp.h1pre)
		for l := 0; l < L; l++ {
			broadcastRow0(m.samp.post[l])
		}
	}
	m.samp.active = true
	m.samp.n = n
	m.samp.nextCol = 0
}

// rowView wraps row 0 of mat as a 1×Cols matrix sharing its storage.
func (m *Model) rowView(mat *tensor.Matrix) *tensor.Matrix {
	return tensor.FromSlice(1, mat.Cols, mat.Data[:mat.Cols])
}

// broadcastRow0 copies row 0 of mat into every other row.
func broadcastRow0(mat *tensor.Matrix) {
	row0 := mat.Data[:mat.Cols]
	for r := 1; r < mat.Rows; r++ {
		copy(mat.Row(r), row0)
	}
}

// firstLinear returns the trunk's first masked layer.
func (m *Model) firstLinear() *nn.Linear { return m.trunk.Layers[0].(*nn.Linear) }

// condIncremental advances the cached walk to col and writes the conditional
// distributions. Caller guarantees col == m.samp.nextCol and n == m.samp.n.
func (m *Model) condIncremental(codes []int32, n, col int, out [][]float64) {
	L := len(m.samp.post)
	if col > 0 {
		// Fold the newly visible column col-1 (input degree col) into the
		// layer-1 cache: only units with degree >= col can change, and the
		// masked weights below s0 are exactly zero, so the suffix Axpy is
		// bit-identical to the full-row one.
		nc := len(m.domains)
		c := &m.codecs[col-1]
		w1 := m.firstLinear().W.Val
		s0 := m.hidStart[0][col]
		if s0 < m.samp.h1pre.Cols {
			pre, post0 := m.samp.h1pre, m.samp.post[0]
			tensor.ParallelFor(n, func(start, end int) {
				for r := start; r < end; r++ {
					dst := pre.Row(r)[s0:]
					code := int(codes[r*nc+col-1])
					if c.embedded {
						e := c.emb.W.Val.Row(code)
						for k := 0; k < c.inW; k++ {
							if ek := e[k]; ek != 0 {
								tensor.Axpy(ek, w1.Row(c.inOff+k)[s0:], dst)
							}
						}
					} else {
						tensor.Axpy(1, w1.Row(c.inOff+code)[s0:], dst)
					}
					po := post0.Row(r)[s0:]
					for j, v := range dst {
						if v > 0 {
							po[j] = v
						} else {
							po[j] = 0
						}
					}
				}
			})
		}
		// Deeper layers: rerun just the changed window densely from the
		// (already current) previous layer's activations.
		for l := 1; l < L; l++ {
			lin := m.trunk.Layers[2*l].(*nn.Linear)
			tensor.LinearReLUCols(m.samp.post[l], m.samp.post[l-1],
				lin.W.Val, lin.B.Val.Data, true, m.hidStart[l][col])
		}
	}
	m.condFromHidden(m.samp.post[L-1], n, col, out)
	m.samp.nextCol = col + 1
}

// trunkTail runs trunk layers after the first Linear+ReLU pair with the
// fused inference kernels.
func (m *Model) trunkTail(h *tensor.Matrix) *tensor.Matrix {
	for i := 2; i < len(m.trunk.Layers); i += 2 {
		h = m.trunk.Layers[i].(*nn.Linear).InferForward(h, true)
	}
	return h
}

// inferTrunk runs the whole trunk with fused kernels (full-forward inference
// path; training keeps trunk.Forward so activations are cached for backward).
func (m *Model) inferTrunk(x *tensor.Matrix) *tensor.Matrix {
	h := m.firstLinear().InferForward(x, true)
	return m.trunkTail(h)
}

// condFromHidden decodes column col's conditionals from the final hidden
// activations: the column's head slice, the embedding-reuse product when the
// column has one, and a row softmax.
func (m *Model) condFromHidden(h *tensor.Matrix, n, col int, out [][]float64) {
	c := &m.codecs[col]
	block := m.headBlock(h, n, col)
	if c.dec == nil {
		for r := 0; r < n; r++ {
			nn.Softmax(block.Row(r), out[r][:c.domain])
		}
		return
	}
	// logits = block · Eᵀ  (n×h by h×|Ai|), batched through the packed GEMM
	// instead of per-row dot products.
	if m.infer.logits == nil || m.infer.logits.Rows != n || m.infer.logits.Cols != c.domain {
		m.infer.logits = tensor.New(n, c.domain)
	}
	tensor.MatMulTransB(m.infer.logits, block, c.dec.Val, false)
	for r := 0; r < n; r++ {
		nn.Softmax(m.infer.logits.Row(r), out[r][:c.domain])
	}
}

// Fork returns a replica that shares every parameter with m but owns its own
// activation scratch and sampling state, so replicas can serve CondBatch and
// LogProbBatch concurrently (one replica per goroutine). Forks are for
// inference: training through a fork corrupts the shared gradients.
func (m *Model) Fork() *Model {
	f := &Model{
		cfg:      m.cfg,
		domains:  m.domains,
		codecs:   append([]colCodec(nil), m.codecs...),
		inDim:    m.inDim,
		headDim:  m.headDim,
		trunk:    m.trunk.ShareWeights(),
		head:     m.head.ShareWeights(),
		params:   m.params,
		hidStart: m.hidStart,
	}
	return f
}

// ForkModel implements core.Forkable (returning any keeps this package from
// importing core; the estimator asserts the replica back to core.Model).
func (m *Model) ForkModel() any { return m.Fork() }
