package made

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/envelope"
)

// Wire-format constants. The gob payload travels inside a CRC32-protected,
// versioned envelope (internal/envelope): a truncated file, a flipped bit,
// or a foreign format is rejected before any byte reaches the gob decoder.
const (
	wireMagic   = "narumade"
	wireVersion = 1

	// maxWireBytes bounds the payload allocation when loading: larger than
	// any model this module trains (the paper's budgets top out in the tens
	// of megabytes), small enough that a hostile length field cannot reserve
	// unbounded memory.
	maxWireBytes = 1 << 30

	// Architecture sanity bounds applied before rebuilding a network from
	// untrusted bytes. They are far above anything the trainer produces but
	// cap the allocations a crafted file could demand.
	maxCols      = 1 << 14
	maxDomain    = 1 << 26
	maxLayers    = 1 << 8
	maxLayerSize = 1 << 20
)

// savedModel is the gob wire format: the architecture plus flat parameter
// payloads in registration order.
type savedModel struct {
	Cfg     Config
	Domains []int
	Names   []string
	Shapes  [][2]int
	Data    [][]float32
}

// gob numbers wire types process-globally in order of first use, so the bytes
// a stream carries for its type descriptors depend on which other gob types
// the process happened to touch earlier (a resumed training run decodes a
// checkpoint before saving its model, a fresh run does not). Claiming this
// package's ids at init pins them regardless of process history, keeping
// saved artifacts byte-identical across equivalent runs.
func init() { _ = gob.NewEncoder(io.Discard).Encode(savedModel{}) }

// Save serializes the model (architecture + weights) to w. The format is
// self-describing: Load rebuilds the identical network and copies weights in.
func (m *Model) Save(w io.Writer) error {
	sm := savedModel{Cfg: m.cfg, Domains: m.domains}
	for _, p := range m.params {
		sm.Names = append(sm.Names, p.Name)
		sm.Shapes = append(sm.Shapes, [2]int{p.Val.Rows, p.Val.Cols})
		sm.Data = append(sm.Data, p.Val.Data)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&sm); err != nil {
		return fmt.Errorf("made: encoding model: %w", err)
	}
	if err := envelope.Write(w, wireMagic, wireVersion, buf.Bytes()); err != nil {
		return fmt.Errorf("made: writing model: %w", err)
	}
	return nil
}

// Load reconstructs a model previously written by Save. The input is treated
// as untrusted: the envelope checksum rejects corruption, every architecture
// field is bounds-checked before any network is built, and parameter payload
// lengths are verified against the rebuilt shapes before copying — Load
// returns an error on damaged or hostile input, never panics, and never
// allocates more than the declared (bounded) payload size.
func Load(r io.Reader) (m *Model, err error) {
	version, payload, err := envelope.Read(r, wireMagic, maxWireBytes)
	if err != nil {
		return nil, fmt.Errorf("made: reading model: %w", err)
	}
	if version != wireVersion {
		return nil, fmt.Errorf("made: unsupported model format version %d (want %d)", version, wireVersion)
	}
	var sm savedModel
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&sm); err != nil {
		return nil, fmt.Errorf("made: decoding model: %w", err)
	}
	if err := validateSaved(&sm); err != nil {
		return nil, fmt.Errorf("made: invalid saved model: %w", err)
	}
	// New panics on inconsistent configs; a checksum-valid but hostile
	// payload can still reach here, so convert any panic into an error.
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("made: rebuilding saved architecture: %v", r)
		}
	}()
	m = New(sm.Domains, sm.Cfg)
	if len(sm.Names) != len(m.params) {
		return nil, fmt.Errorf("made: saved model has %d parameters, architecture builds %d",
			len(sm.Names), len(m.params))
	}
	for i, p := range m.params {
		if sm.Names[i] != p.Name || sm.Shapes[i] != [2]int{p.Val.Rows, p.Val.Cols} {
			return nil, fmt.Errorf("made: parameter %d mismatch: saved %s %v, built %s %d×%d",
				i, sm.Names[i], sm.Shapes[i], p.Name, p.Val.Rows, p.Val.Cols)
		}
		if len(sm.Data[i]) != len(p.Val.Data) {
			return nil, fmt.Errorf("made: parameter %s payload has %d values, shape %v needs %d",
				p.Name, len(sm.Data[i]), sm.Shapes[i], len(p.Val.Data))
		}
		copy(p.Val.Data, sm.Data[i])
		p.ApplyMask()
	}
	return m, nil
}

// validateSaved bounds every architecture field of an untrusted savedModel
// before any of it is used to size an allocation or rebuild a network.
func validateSaved(sm *savedModel) error {
	if n := len(sm.Domains); n == 0 || n > maxCols {
		return fmt.Errorf("%d columns", n)
	}
	for i, d := range sm.Domains {
		if d <= 0 || d > maxDomain {
			return fmt.Errorf("column %d has domain %d", i, d)
		}
	}
	if n := len(sm.Cfg.HiddenSizes); n == 0 || n > maxLayers {
		return fmt.Errorf("%d hidden layers", n)
	}
	for i, h := range sm.Cfg.HiddenSizes {
		if h <= 0 || h > maxLayerSize {
			return fmt.Errorf("hidden layer %d has width %d", i, h)
		}
	}
	if sm.Cfg.EmbedDim < 0 || sm.Cfg.EmbedDim > maxLayerSize {
		return fmt.Errorf("embedding width %d", sm.Cfg.EmbedDim)
	}
	if sm.Cfg.EmbedThreshold < 0 {
		return fmt.Errorf("embedding threshold %d", sm.Cfg.EmbedThreshold)
	}
	if len(sm.Names) != len(sm.Shapes) || len(sm.Names) != len(sm.Data) {
		return fmt.Errorf("parameter lists disagree: %d names, %d shapes, %d payloads",
			len(sm.Names), len(sm.Shapes), len(sm.Data))
	}
	for i, sh := range sm.Shapes {
		if sh[0] < 0 || sh[1] < 0 || sh[0] > maxWireBytes || sh[1] > maxWireBytes {
			return fmt.Errorf("parameter %d has shape %d×%d", i, sh[0], sh[1])
		}
	}
	return nil
}
