package made

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Block-granular sampling. The fused serving engine (internal/core) walks many
// queries' sample rows through the network as one tall batch, column by
// column. Two things distinguish that walk from the strict sequential one the
// delta-forward cache (infer.go) was built for:
//
//   - columns may be skipped: a query with an interior wildcard never samples
//     the column, so its code stays -1 and the input block stays zero — the
//     autoregressive state must advance across the gap without a decode;
//   - only a row range of the batch may need a column's conditionals, and the
//     active batch shrinks as finished queries retire from the tail.
//
// AdvanceBlock/DecodeBlock split CondBatch into those two halves, and the
// suffix refresh of the old walk tightens into *degree bands*: revealing
// column c dirties units of degree ≥ c+1, but decoding column col only reads
// units of degree ≤ col, so the walk lazily refreshes each layer's band
// [refreshed[l], hidStart[l][col+1]) exactly once — over a whole walk every
// hidden unit is recomputed once instead of once per remaining column, an
// ~ncols/2× reduction in trunk work. Band results are bit-identical to the
// eager suffix refresh: a band GEMM reads only the (current) prefix of the
// previous layer admitted by its degree, and the masked weights above that
// prefix are exactly zero.
//
// All weight windows the walk replays — degree bands, per-column head
// prefixes, decode transposes, and the first layer's embedded-fold blocks —
// are packed once and cached on the model (invalidated by training), so the
// per-step GEMMs skip the pack pass entirely.

// packCache holds pre-packed weight windows for the block sampling path. It
// is per-model state (forks build their own) and is dropped whenever a
// training step changes the parameters.
type packCache struct {
	band [][]*tensor.PackedB // [layer][degree]: W_l rows [:Kprev], cols = degree band
	head []*tensor.PackedB   // [col]: head.W rows [:Kc], cols = col's head block
	dec  []*tensor.PackedB   // [col]: PackTrans of the column's decode matrix
	w1   []*tensor.PackedB   // [col]: W1 rows = col's input block, cols [s0:)
}

// invalidatePacks drops every cached packing and the zero-input forward
// snapshot; the next block walk repacks (and re-snapshots) lazily from the
// updated weights.
func (m *Model) invalidatePacks() {
	m.packs = packCache{}
	m.samp.zeroH1 = nil
	m.samp.zeroPost = nil
}

// bandPack returns (building if needed) the packed window of hidden layer l's
// weights covering degree band d: output columns [hidStart[l][d],
// hidStart[l][d+1]), input rows limited to the prefix of the previous layer
// the band's mask admits (degree ≤ d). l counts hidden layers (l ≥ 1; layer 0
// is maintained by the fold itself).
func (m *Model) bandPack(l, d int) *tensor.PackedB {
	pc := &m.packs
	if pc.band == nil {
		pc.band = make([][]*tensor.PackedB, len(m.hidStart))
	}
	if pc.band[l] == nil {
		pc.band[l] = make([]*tensor.PackedB, len(m.domains)+1)
	}
	pb := pc.band[l][d]
	if pb == nil {
		lin := m.trunk.Layers[2*l].(*nn.Linear)
		b0, b1 := m.hidStart[l][d], m.hidStart[l][d+1]
		kPrev := m.hidStart[l-1][d+1] // first prev-layer unit the mask zeroes
		pb = new(tensor.PackedB)
		pb.PackRange(lin.W.Val, 0, kPrev, b0, b1)
		pc.band[l][d] = pb
	}
	return pb
}

// headPack returns the packed K-prefix window of the head weights for col:
// rows limited to the last-layer units of degree ≤ col (all others are
// masked to zero), columns = the column's head block.
func (m *Model) headPack(col int) *tensor.PackedB {
	pc := &m.packs
	if pc.head == nil {
		pc.head = make([]*tensor.PackedB, len(m.domains))
	}
	pb := pc.head[col]
	if pb == nil {
		c := &m.codecs[col]
		kc := m.hidStart[len(m.hidStart)-1][col+1]
		pb = new(tensor.PackedB)
		pb.PackRange(m.head.W.Val, 0, kc, c.headOff, c.headOff+c.headW)
		pc.head[col] = pb
	}
	return pb
}

// decPack returns the packed transpose of col's decode matrix (embedding
// reuse: logits = block·Eᵀ).
func (m *Model) decPack(col int) *tensor.PackedB {
	pc := &m.packs
	if pc.dec == nil {
		pc.dec = make([]*tensor.PackedB, len(m.domains))
	}
	pb := pc.dec[col]
	if pb == nil {
		pb = new(tensor.PackedB)
		pb.PackTrans(m.codecs[col].dec.Val)
		pc.dec[col] = pb
	}
	return pb
}

// w1Pack returns the packed window of the first layer's weights for folding
// an embedded column col: rows = the column's input block, columns = the
// suffix its degree can reach.
func (m *Model) w1Pack(col int) *tensor.PackedB {
	pc := &m.packs
	if pc.w1 == nil {
		pc.w1 = make([]*tensor.PackedB, len(m.domains))
	}
	pb := pc.w1[col]
	if pb == nil {
		c := &m.codecs[col]
		w1 := m.firstLinear().W.Val
		s0 := m.hidStart[0][col+1]
		pb = new(tensor.PackedB)
		pb.PackRange(w1, c.inOff, c.inOff+c.inW, s0, w1.Cols)
		pc.w1[col] = pb
	}
	return pb
}

// foldParallelMin gates the fold's clamp/Axpy loops between the inline
// serial loop and ParallelFor, in rows × window elements: below it the
// parallel dispatch (closure allocation + goroutine handoff) costs more than
// the loop itself, and the serial branch keeps the steady-state block walk
// allocation-free.
const foldParallelMin = 1 << 15

// foldRows folds column cc's freshly sampled codes into the first layer's
// caches for rows [r0, r1) only: the embedding gather (or one-hot Axpy) into
// h1pre's suffix window [hidStart[0][cc+1]:), then the post[0] re-clamp of
// the same window. Rows whose code is negative (wildcard-skipped or
// already-retired lanes whose column never sampled) contribute nothing —
// their input block stays zero. The step touches only rows [r0, r1), so
// disjoint ranges may run concurrently once the shared scratch (embA sizing,
// the w1 pack) is prepared; vPre/vEmb are view headers private to the
// caller's range. Staleness markers for deeper layers are the caller's job.
func (m *Model) foldRows(codes []int32, cc, r0, r1 int, vPre, vEmb *tensor.Matrix) {
	s := &m.samp
	c := &m.codecs[cc]
	nc := len(m.domains)
	s0 := m.hidStart[0][cc+1]
	if s0 >= s.h1pre.Cols {
		return
	}
	pre, post0 := s.h1pre, s.post[0]
	if c.embedded {
		// Gather the embedding rows and fold them with one accumulating
		// GEMM against the cached weight window; zero rows (negative
		// codes) add exact zeros.
		embA := m.infer.embA // pre-sized to the full batch by the caller
		for r := r0; r < r1; r++ {
			dst := embA.Row(r)
			if code := codes[r*nc+cc]; code >= 0 {
				c.emb.Lookup(code, dst)
			} else {
				for j := range dst {
					dst[j] = 0
				}
			}
		}
		preView := viewRows(vPre, pre, r0, r1)
		embView := viewRows(vEmb, embA, r0, r1)
		tensor.MatMulPackedWindow(preView, embView, m.w1Pack(cc), nil, false, true, s0)
		for r := r0; r < r1; r++ {
			dst := pre.Row(r)[s0:]
			po := post0.Row(r)[s0:]
			for j, v := range dst {
				if v > 0 {
					po[j] = v
				} else {
					po[j] = 0
				}
			}
		}
	} else {
		w1 := m.firstLinear().W.Val
		for r := r0; r < r1; r++ {
			dst := pre.Row(r)[s0:]
			if code := codes[r*nc+cc]; code >= 0 {
				tensor.Axpy(1, w1.Row(c.inOff+int(code))[s0:], dst)
			}
			po := post0.Row(r)[s0:]
			for j, v := range dst {
				if v > 0 {
					po[j] = v
				} else {
					po[j] = 0
				}
			}
		}
	}
}

// foldColumn folds the freshly sampled codes of column cc into the first
// layer's caches for rows [0, n), exactly as the eager walk did, and marks
// the deeper layers stale; AdvanceBlock refreshes them band-by-band on
// demand. Large folds fan the row-independent work across cores.
//
// Rows whose code is negative (lanes that wildcard-skipped cc) are skipped
// outright rather than folded as zeros: their input block contributes
// nothing, so their h1pre rows are unchanged and the earlier clamp of the
// same rows still holds — bit-identical to never touching them, which is
// exactly what the sequential walk does. In a fused block that packs lanes
// with different footprints, this keeps the fold's cost proportional to the
// rows that actually sampled cc instead of the full block height.
func (m *Model) foldColumn(codes []int32, n, cc int) {
	s := &m.samp
	c := &m.codecs[cc]
	s0 := m.hidStart[0][cc+1]
	if s0 < s.h1pre.Cols {
		if c.embedded {
			m.infer.embA = resizeMat(m.infer.embA, n, c.inW)
			m.w1Pack(cc)
		}
		nc := len(m.domains)
		for r0 := 0; r0 < n; {
			if codes[r0*nc+cc] < 0 {
				r0++
				continue
			}
			r1 := r0 + 1
			for r1 < n && codes[r1*nc+cc] >= 0 {
				r1++
			}
			if (r1-r0)*(s.h1pre.Cols-s0) < foldParallelMin {
				m.foldRows(codes, cc, r0, r1, &s.vFold, &s.vEmb)
			} else {
				base := r0
				tensor.ParallelFor(r1-r0, func(start, end int) {
					var vPre, vEmb tensor.Matrix
					m.foldRows(codes, cc, base+start, base+end, &vPre, &vEmb)
				})
			}
			r0 = r1
		}
	}
	// Deeper layers: revealing a column of input degree cc+1 dirties units of
	// degree ≥ cc+1. Layer 0 was fully re-clamped above.
	for l := 1; l < len(s.post); l++ {
		if t := m.hidStart[l][cc+1]; t < s.refreshed[l] {
			s.refreshed[l] = t
		}
	}
}

// AdvanceBlock moves the walk's autoregressive state to column col over rows
// [0, n): it folds the codes of the last decoded column (reading only columns
// < col; negative codes contribute nothing) and refreshes each hidden layer's
// stale degree bands up to what decoding col reads. Columns may be skipped —
// their codes stay -1 — and n may shrink between calls as finished lanes
// retire from the batch's tail; it must never grow within one walk.
func (m *Model) AdvanceBlock(codes []int32, n, col int) {
	s := &m.samp
	if !s.active || n > s.n || col < 0 || col >= len(m.domains) {
		panic(fmt.Sprintf("made: AdvanceBlock(n=%d, col=%d) outside active walk (n=%d, active=%v)",
			n, col, s.n, s.active))
	}
	if s.lastDecoded >= col {
		panic(fmt.Sprintf("made: AdvanceBlock col %d after col %d", col, s.lastDecoded))
	}
	s.decodeShared = false
	if s.lastDecoded >= 0 {
		m.foldColumn(codes, n, s.lastDecoded)
	}
	for l := 1; l < len(s.post); l++ {
		hi := m.hidStart[l][col+1]
		lo := s.refreshed[l]
		if hi <= lo {
			continue
		}
		curView := viewRows(&s.vCur, s.post[l], 0, n)
		prevView := viewRows(&s.vPrev, s.post[l-1], 0, n)
		bias := m.trunk.Layers[2*l].(*nn.Linear).B.Val.Data
		for d := 1; d <= len(m.domains); d++ {
			b0, b1 := m.hidStart[l][d], m.hidStart[l][d+1]
			if b1 <= lo || b0 >= hi || b0 == b1 {
				continue // outside the stale window, or an empty band
			}
			tensor.MatMulPackedPrefix(curView, prevView, m.bandPack(l, d), bias[b0:b1], true, false, b0)
		}
		s.refreshed[l] = hi
	}
	s.lastDecoded = col
	s.nextCol = col + 1
}

// BeginAdvanceRows implements the row-range advance protocol (see
// core.BlockRowAdvancer): it validates the advance to col exactly like
// AdvanceBlock over rows [0, n) and prepares the shared scratch — the
// embedding-gather buffer and every packed weight window the advance will
// replay — so AdvanceRows calls over disjoint row ranges can run
// concurrently without racing on lazy pack construction. The split is
// bit-identical to one AdvanceBlock(codes, n, col) call: folds, band GEMMs,
// and ReLU clamps are all row-independent, and FinishAdvanceRows commits the
// same staleness bookkeeping a full-height advance would.
func (m *Model) BeginAdvanceRows(n, col int) {
	s := &m.samp
	if !s.active || n > s.n || col < 0 || col >= len(m.domains) {
		panic(fmt.Sprintf("made: BeginAdvanceRows(n=%d, col=%d) outside active walk (n=%d, active=%v)",
			n, col, s.n, s.active))
	}
	if s.lastDecoded >= col {
		panic(fmt.Sprintf("made: BeginAdvanceRows col %d after col %d", col, s.lastDecoded))
	}
	s.decodeShared = false
	if cc := s.lastDecoded; cc >= 0 {
		if c := &m.codecs[cc]; c.embedded && m.hidStart[0][cc+1] < s.h1pre.Cols {
			m.infer.embA = resizeMat(m.infer.embA, n, c.inW)
			m.w1Pack(cc)
		}
	}
	for l := 1; l < len(s.post); l++ {
		hi, lo := m.advanceWindow(l, col)
		if hi <= lo {
			continue
		}
		for d := 1; d <= len(m.domains); d++ {
			b0, b1 := m.hidStart[l][d], m.hidStart[l][d+1]
			if b1 <= lo || b0 >= hi || b0 == b1 {
				continue
			}
			m.bandPack(l, d)
		}
	}
}

// advanceWindow returns the stale window [lo, hi) of hidden layer l for an
// advance to col, accounting for the not-yet-committed staleness the pending
// fold of lastDecoded introduces (the ranged advance defers the marker
// update to FinishAdvanceRows so concurrent ranges read consistent state).
func (m *Model) advanceWindow(l, col int) (hi, lo int) {
	s := &m.samp
	hi = m.hidStart[l][col+1]
	lo = s.refreshed[l]
	if cc := s.lastDecoded; cc >= 0 {
		if t := m.hidStart[l][cc+1]; t < lo {
			lo = t
		}
	}
	return hi, lo
}

// AdvanceRows performs the fold + band refresh of an advance to col for rows
// [r0, r1) only. Disjoint ranges may run concurrently between one
// BeginAdvanceRows(n, col) and one FinishAdvanceRows(col); the union of the
// ranges must cover [0, n). Each range's layer stack is self-contained:
// layer l's band GEMM reads layer l-1's rows of the same range, which the
// range itself just refreshed.
func (m *Model) AdvanceRows(codes []int32, col, r0, r1 int) {
	s := &m.samp
	if cc := s.lastDecoded; cc >= 0 {
		var vPre, vEmb tensor.Matrix
		m.foldRows(codes, cc, r0, r1, &vPre, &vEmb)
	}
	for l := 1; l < len(s.post); l++ {
		hi, lo := m.advanceWindow(l, col)
		if hi <= lo {
			continue
		}
		var vCur, vPrev tensor.Matrix
		curView := viewRows(&vCur, s.post[l], r0, r1)
		prevView := viewRows(&vPrev, s.post[l-1], r0, r1)
		bias := m.trunk.Layers[2*l].(*nn.Linear).B.Val.Data
		for d := 1; d <= len(m.domains); d++ {
			b0, b1 := m.hidStart[l][d], m.hidStart[l][d+1]
			if b1 <= lo || b0 >= hi || b0 == b1 {
				continue
			}
			tensor.MatMulPackedPrefix(curView, prevView, m.bandPack(l, d), bias[b0:b1], true, false, b0)
		}
	}
}

// FinishAdvanceRows commits the advance begun by BeginAdvanceRows after
// every row range has run: the same staleness markers and column cursor a
// full-height AdvanceBlock would leave.
func (m *Model) FinishAdvanceRows(col int) {
	s := &m.samp
	if cc := s.lastDecoded; cc >= 0 {
		for l := 1; l < len(s.post); l++ {
			if t := m.hidStart[l][cc+1]; t < s.refreshed[l] {
				s.refreshed[l] = t
			}
		}
	}
	for l := 1; l < len(s.post); l++ {
		if hi := m.hidStart[l][col+1]; hi > s.refreshed[l] {
			s.refreshed[l] = hi
		}
	}
	s.lastDecoded = col
	s.nextCol = col + 1
}

// PrepareDecode implements core.BlockRowDecoder: it sizes the column's
// decode scratch for the full walk height and pre-builds its packed weight
// windows, after which DecodeBlock calls over disjoint row ranges of the
// current column may run concurrently — each range reads and writes only its
// own rows of the shared scratch. The armed mode lasts until the next
// advance or BeginSampling.
func (m *Model) PrepareDecode(col int) {
	s := &m.samp
	if !s.active || s.lastDecoded != col {
		panic(fmt.Sprintf("made: PrepareDecode(col=%d) without AdvanceBlock (at %d)", col, s.lastDecoded))
	}
	c := &m.codecs[col]
	m.infer.head = resizeMat(m.infer.head, s.n, c.headW)
	m.headPack(col)
	if c.dec != nil {
		m.infer.logits = resizeMat(m.infer.logits, s.n, c.domain)
		m.decPack(col)
	}
	s.decodeShared = true
}

// DecodeBlock writes P̂(X_col | x_<col) for rows [r0, r1) of the walk into
// out (one probability vector per row, out[j] for row r0+j). The walk must
// have been advanced to col. After PrepareDecode(col), calls over disjoint
// row ranges may run concurrently; otherwise the decode reuses per-model
// scratch and callers must serialize.
func (m *Model) DecodeBlock(col, r0, r1 int, out [][]float64) {
	s := &m.samp
	if !s.active || s.lastDecoded != col {
		panic(fmt.Sprintf("made: DecodeBlock(col=%d) without AdvanceBlock (at %d)", col, s.lastDecoded))
	}
	if r0 < 0 || r1 < r0 || r1 > s.n {
		panic(fmt.Sprintf("made: DecodeBlock rows [%d:%d) of %d", r0, r1, s.n))
	}
	if r0 == r1 {
		return
	}
	last := s.post[len(s.post)-1]
	if s.decodeShared {
		// Concurrent window mode: stack-local view headers, offset-addressed
		// rows of the scratch PrepareDecode sized for the full walk.
		var vH tensor.Matrix
		m.decodeWindow(viewRows(&vH, last, r0, r1), col, r0, r1, out)
		return
	}
	m.decodeHidden(viewRows(&s.vHid, last, r0, r1), r1-r0, col, out)
}

// decodeWindow is decodeHidden over rows [r0, r1) of the full-height decode
// scratch (PrepareDecode mode): every buffer is addressed at the caller's
// row offset, so concurrent calls over disjoint ranges never share rows.
func (m *Model) decodeWindow(h *tensor.Matrix, col, r0, r1 int, out [][]float64) {
	c := &m.codecs[col]
	n := r1 - r0
	var vBlock, vLogits tensor.Matrix
	block := viewRows(&vBlock, m.infer.head, r0, r1)
	bias := m.head.B.Val.Data[c.headOff : c.headOff+c.headW]
	tensor.MatMulPackedPrefix(block, h, m.headPack(col), bias, false, false, 0)
	if c.dec == nil {
		for r := 0; r < n; r++ {
			nn.SoftmaxProb(block.Row(r), out[r][:c.domain])
		}
		return
	}
	logits := viewRows(&vLogits, m.infer.logits, r0, r1)
	tensor.MatMulPacked(logits, block, m.decPack(col), nil, false, false)
	for r := 0; r < n; r++ {
		nn.SoftmaxProb(logits.Row(r), out[r][:c.domain])
	}
}

// decodeHidden decodes column col's conditionals from final hidden
// activations h (n rows): the cached K-prefix head product, the cached
// embedding-reuse product when the column has one, and the fast row softmax.
// The head reads only last-layer units of degree ≤ col — a prefix under
// degree sorting — so rows of h beyond that prefix may hold stale values; the
// masked weights there are exactly zero and the prefix kernel never reads
// them.
func (m *Model) decodeHidden(h *tensor.Matrix, n, col int, out [][]float64) {
	c := &m.codecs[col]
	block := resizeMat(m.infer.head, n, c.headW)
	m.infer.head = block
	bias := m.head.B.Val.Data[c.headOff : c.headOff+c.headW]
	tensor.MatMulPackedPrefix(block, h, m.headPack(col), bias, false, false, 0)
	if c.dec == nil {
		for r := 0; r < n; r++ {
			nn.SoftmaxProb(block.Row(r), out[r][:c.domain])
		}
		return
	}
	logits := resizeMat(m.infer.logits, n, c.domain)
	m.infer.logits = logits
	tensor.MatMulPacked(logits, block, m.decPack(col), nil, false, false)
	for r := 0; r < n; r++ {
		nn.SoftmaxProb(logits.Row(r), out[r][:c.domain])
	}
}

// SkipsWildcards implements core.WildcardSkipper: the walk tolerates skipped
// columns (codes left at -1 advance the state with a zero input block).
func (m *Model) SkipsWildcards() bool { return true }
