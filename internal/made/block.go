package made

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Block-granular sampling. The fused serving engine (internal/core) walks many
// queries' sample rows through the network as one tall batch, column by
// column. Two things distinguish that walk from the strict sequential one the
// delta-forward cache (infer.go) was built for:
//
//   - columns may be skipped: a query with an interior wildcard never samples
//     the column, so its code stays -1 and the input block stays zero — the
//     autoregressive state must advance across the gap without a decode;
//   - only a row range of the batch may need a column's conditionals, and the
//     active batch shrinks as finished queries retire from the tail.
//
// AdvanceBlock/DecodeBlock split CondBatch into those two halves, and the
// suffix refresh of the old walk tightens into *degree bands*: revealing
// column c dirties units of degree ≥ c+1, but decoding column col only reads
// units of degree ≤ col, so the walk lazily refreshes each layer's band
// [refreshed[l], hidStart[l][col+1]) exactly once — over a whole walk every
// hidden unit is recomputed once instead of once per remaining column, an
// ~ncols/2× reduction in trunk work. Band results are bit-identical to the
// eager suffix refresh: a band GEMM reads only the (current) prefix of the
// previous layer admitted by its degree, and the masked weights above that
// prefix are exactly zero.
//
// All weight windows the walk replays — degree bands, per-column head
// prefixes, decode transposes, and the first layer's embedded-fold blocks —
// are packed once and cached on the model (invalidated by training), so the
// per-step GEMMs skip the pack pass entirely.

// packCache holds pre-packed weight windows for the block sampling path. It
// is per-model state (forks build their own) and is dropped whenever a
// training step changes the parameters.
type packCache struct {
	band [][]*tensor.PackedB // [layer][degree]: W_l rows [:Kprev], cols = degree band
	head []*tensor.PackedB   // [col]: head.W rows [:Kc], cols = col's head block
	dec  []*tensor.PackedB   // [col]: PackTrans of the column's decode matrix
	w1   []*tensor.PackedB   // [col]: W1 rows = col's input block, cols [s0:)
}

// invalidatePacks drops every cached packing; the next block walk repacks
// lazily from the updated weights.
func (m *Model) invalidatePacks() { m.packs = packCache{} }

// bandPack returns (building if needed) the packed window of hidden layer l's
// weights covering degree band d: output columns [hidStart[l][d],
// hidStart[l][d+1]), input rows limited to the prefix of the previous layer
// the band's mask admits (degree ≤ d). l counts hidden layers (l ≥ 1; layer 0
// is maintained by the fold itself).
func (m *Model) bandPack(l, d int) *tensor.PackedB {
	pc := &m.packs
	if pc.band == nil {
		pc.band = make([][]*tensor.PackedB, len(m.hidStart))
	}
	if pc.band[l] == nil {
		pc.band[l] = make([]*tensor.PackedB, len(m.domains)+1)
	}
	pb := pc.band[l][d]
	if pb == nil {
		lin := m.trunk.Layers[2*l].(*nn.Linear)
		b0, b1 := m.hidStart[l][d], m.hidStart[l][d+1]
		kPrev := m.hidStart[l-1][d+1] // first prev-layer unit the mask zeroes
		pb = new(tensor.PackedB)
		pb.PackRange(lin.W.Val, 0, kPrev, b0, b1)
		pc.band[l][d] = pb
	}
	return pb
}

// headPack returns the packed K-prefix window of the head weights for col:
// rows limited to the last-layer units of degree ≤ col (all others are
// masked to zero), columns = the column's head block.
func (m *Model) headPack(col int) *tensor.PackedB {
	pc := &m.packs
	if pc.head == nil {
		pc.head = make([]*tensor.PackedB, len(m.domains))
	}
	pb := pc.head[col]
	if pb == nil {
		c := &m.codecs[col]
		kc := m.hidStart[len(m.hidStart)-1][col+1]
		pb = new(tensor.PackedB)
		pb.PackRange(m.head.W.Val, 0, kc, c.headOff, c.headOff+c.headW)
		pc.head[col] = pb
	}
	return pb
}

// decPack returns the packed transpose of col's decode matrix (embedding
// reuse: logits = block·Eᵀ).
func (m *Model) decPack(col int) *tensor.PackedB {
	pc := &m.packs
	if pc.dec == nil {
		pc.dec = make([]*tensor.PackedB, len(m.domains))
	}
	pb := pc.dec[col]
	if pb == nil {
		pb = new(tensor.PackedB)
		pb.PackTrans(m.codecs[col].dec.Val)
		pc.dec[col] = pb
	}
	return pb
}

// w1Pack returns the packed window of the first layer's weights for folding
// an embedded column col: rows = the column's input block, columns = the
// suffix its degree can reach.
func (m *Model) w1Pack(col int) *tensor.PackedB {
	pc := &m.packs
	if pc.w1 == nil {
		pc.w1 = make([]*tensor.PackedB, len(m.domains))
	}
	pb := pc.w1[col]
	if pb == nil {
		c := &m.codecs[col]
		w1 := m.firstLinear().W.Val
		s0 := m.hidStart[0][col+1]
		pb = new(tensor.PackedB)
		pb.PackRange(w1, c.inOff, c.inOff+c.inW, s0, w1.Cols)
		pc.w1[col] = pb
	}
	return pb
}

// foldColumn folds the freshly sampled codes of column cc into the first
// layer's caches for rows [0, n): h1pre's suffix [hidStart[0][cc+1]:)
// accumulates the column's input-block contribution and post[0] re-clamps the
// same window, exactly as the eager walk did. Rows whose code is negative
// (wildcard-skipped or already-retired lanes whose column never sampled)
// contribute nothing — their input block stays zero. Deeper layers are only
// marked stale; AdvanceBlock refreshes them band-by-band on demand.
func (m *Model) foldColumn(codes []int32, n, cc int) {
	s := &m.samp
	c := &m.codecs[cc]
	nc := len(m.domains)
	s0 := m.hidStart[0][cc+1]
	w1 := m.firstLinear().W.Val
	if s0 < s.h1pre.Cols {
		pre, post0 := s.h1pre, s.post[0]
		if c.embedded {
			// Gather the embedding rows and fold them with one accumulating
			// GEMM against the cached weight window; zero rows (negative
			// codes) add exact zeros.
			embA := resizeMat(m.infer.embA, n, c.inW)
			m.infer.embA = embA
			for r := 0; r < n; r++ {
				dst := embA.Row(r)
				if code := codes[r*nc+cc]; code >= 0 {
					c.emb.Lookup(code, dst)
				} else {
					for j := range dst {
						dst[j] = 0
					}
				}
			}
			preView := tensor.FromSlice(n, pre.Cols, pre.Data[:n*pre.Cols])
			tensor.MatMulPackedWindow(preView, embA, m.w1Pack(cc), nil, false, true, s0)
			tensor.ParallelFor(n, func(start, end int) {
				for r := start; r < end; r++ {
					dst := pre.Row(r)[s0:]
					po := post0.Row(r)[s0:]
					for j, v := range dst {
						if v > 0 {
							po[j] = v
						} else {
							po[j] = 0
						}
					}
				}
			})
		} else {
			tensor.ParallelFor(n, func(start, end int) {
				for r := start; r < end; r++ {
					dst := pre.Row(r)[s0:]
					if code := codes[r*nc+cc]; code >= 0 {
						tensor.Axpy(1, w1.Row(c.inOff+int(code))[s0:], dst)
					}
					po := post0.Row(r)[s0:]
					for j, v := range dst {
						if v > 0 {
							po[j] = v
						} else {
							po[j] = 0
						}
					}
				}
			})
		}
	}
	// Deeper layers: revealing a column of input degree cc+1 dirties units of
	// degree ≥ cc+1. Layer 0 was fully re-clamped above.
	for l := 1; l < len(s.post); l++ {
		if t := m.hidStart[l][cc+1]; t < s.refreshed[l] {
			s.refreshed[l] = t
		}
	}
}

// AdvanceBlock moves the walk's autoregressive state to column col over rows
// [0, n): it folds the codes of the last decoded column (reading only columns
// < col; negative codes contribute nothing) and refreshes each hidden layer's
// stale degree bands up to what decoding col reads. Columns may be skipped —
// their codes stay -1 — and n may shrink between calls as finished lanes
// retire from the batch's tail; it must never grow within one walk.
func (m *Model) AdvanceBlock(codes []int32, n, col int) {
	s := &m.samp
	if !s.active || n > s.n || col < 0 || col >= len(m.domains) {
		panic(fmt.Sprintf("made: AdvanceBlock(n=%d, col=%d) outside active walk (n=%d, active=%v)",
			n, col, s.n, s.active))
	}
	if s.lastDecoded >= col {
		panic(fmt.Sprintf("made: AdvanceBlock col %d after col %d", col, s.lastDecoded))
	}
	if s.lastDecoded >= 0 {
		m.foldColumn(codes, n, s.lastDecoded)
	}
	for l := 1; l < len(s.post); l++ {
		hi := m.hidStart[l][col+1]
		lo := s.refreshed[l]
		if hi <= lo {
			continue
		}
		cur := s.post[l]
		prev := s.post[l-1]
		curView := tensor.FromSlice(n, cur.Cols, cur.Data[:n*cur.Cols])
		prevView := tensor.FromSlice(n, prev.Cols, prev.Data[:n*prev.Cols])
		bias := m.trunk.Layers[2*l].(*nn.Linear).B.Val.Data
		for d := 1; d <= len(m.domains); d++ {
			b0, b1 := m.hidStart[l][d], m.hidStart[l][d+1]
			if b1 <= lo || b0 >= hi || b0 == b1 {
				continue // outside the stale window, or an empty band
			}
			tensor.MatMulPackedPrefix(curView, prevView, m.bandPack(l, d), bias[b0:b1], true, false, b0)
		}
		s.refreshed[l] = hi
	}
	s.lastDecoded = col
	s.nextCol = col + 1
}

// DecodeBlock writes P̂(X_col | x_<col) for rows [r0, r1) of the walk into
// out (one probability vector per row, out[j] for row r0+j). The walk must
// have been advanced to col; the decode itself is read-only, so disjoint row
// ranges of the same column can be decoded in any order.
func (m *Model) DecodeBlock(col, r0, r1 int, out [][]float64) {
	s := &m.samp
	if !s.active || s.lastDecoded != col {
		panic(fmt.Sprintf("made: DecodeBlock(col=%d) without AdvanceBlock (at %d)", col, s.lastDecoded))
	}
	if r0 < 0 || r1 < r0 || r1 > s.n {
		panic(fmt.Sprintf("made: DecodeBlock rows [%d:%d) of %d", r0, r1, s.n))
	}
	if r0 == r1 {
		return
	}
	last := s.post[len(s.post)-1]
	h := tensor.FromSlice(r1-r0, last.Cols, last.Data[r0*last.Cols:r1*last.Cols])
	m.decodeHidden(h, r1-r0, col, out)
}

// decodeHidden decodes column col's conditionals from final hidden
// activations h (n rows): the cached K-prefix head product, the cached
// embedding-reuse product when the column has one, and the fast row softmax.
// The head reads only last-layer units of degree ≤ col — a prefix under
// degree sorting — so rows of h beyond that prefix may hold stale values; the
// masked weights there are exactly zero and the prefix kernel never reads
// them.
func (m *Model) decodeHidden(h *tensor.Matrix, n, col int, out [][]float64) {
	c := &m.codecs[col]
	block := resizeMat(m.infer.head, n, c.headW)
	m.infer.head = block
	bias := m.head.B.Val.Data[c.headOff : c.headOff+c.headW]
	tensor.MatMulPackedPrefix(block, h, m.headPack(col), bias, false, false, 0)
	if c.dec == nil {
		for r := 0; r < n; r++ {
			nn.SoftmaxProb(block.Row(r), out[r][:c.domain])
		}
		return
	}
	logits := resizeMat(m.infer.logits, n, c.domain)
	m.infer.logits = logits
	tensor.MatMulPacked(logits, block, m.decPack(col), nil, false, false)
	for r := 0; r < n; r++ {
		nn.SoftmaxProb(logits.Row(r), out[r][:c.domain])
	}
}

// SkipsWildcards implements core.WildcardSkipper: the walk tolerates skipped
// columns (codes left at -1 advance the state with a zero input block).
func (m *Model) SkipsWildcards() bool { return true }
