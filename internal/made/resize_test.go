package made

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// The model reuses scratch buffers; interleaving different batch sizes
// across TrainStep / CondBatch / LogProbBatch must stay correct.
func TestVariableBatchSizes(t *testing.T) {
	domains := []int{5, 70, 4}
	m := New(domains, tinyConfig(20))
	rng := rand.New(rand.NewSource(21))
	opt := nn.NewAdam(1e-3)
	mkBatch := func(n int) []int32 {
		codes := make([]int32, n*3)
		for i := range codes {
			codes[i] = int32(rng.Intn(domains[i%3]))
		}
		return codes
	}
	for _, n := range []int{16, 64, 4, 64, 1} {
		nll := m.TrainStep(mkBatch(n), n, opt)
		if math.IsNaN(nll) || nll <= 0 {
			t.Fatalf("n=%d: nll %v", n, nll)
		}
	}
	// Reference conditional at batch size 1.
	probe := []int32{2, 33, 1}
	ref := [][]float64{make([]float64, 70)}
	m.CondBatch(probe, 1, 1, ref)
	// The same tuple inside a bigger batch must get the identical result.
	big := append(append([]int32{}, mkBatch(5)...), probe...)
	out := make([][]float64, 6)
	for i := range out {
		out[i] = make([]float64, 70)
	}
	m.CondBatch(big, 6, 1, out)
	for v := range ref[0] {
		if math.Abs(out[5][v]-ref[0][v]) > 1e-6 {
			t.Fatalf("batched conditional differs at %d: %v vs %v", v, out[5][v], ref[0][v])
		}
	}
	// LogProbBatch across sizes agrees with itself.
	var a [1]float64
	m.LogProbBatch(probe, 1, a[:])
	dst := make([]float64, 6)
	m.LogProbBatch(big, 6, dst)
	if math.Abs(dst[5]-a[0]) > 1e-6 {
		t.Fatalf("batched log-prob %v vs single %v", dst[5], a[0])
	}
}

func TestTrainStepZeroBatchNoop(t *testing.T) {
	m := New([]int{4, 5}, tinyConfig(22))
	if nll := m.TrainStep(nil, 0, nn.NewAdam(1e-3)); nll != 0 {
		t.Fatalf("zero batch nll = %v", nll)
	}
}
