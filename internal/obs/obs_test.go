package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentSum(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	// Same name returns the same counter.
	if r.Counter("hits") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestGaugeSetAddValue(t *testing.T) {
	r := New()
	g := r.Gauge("temp")
	g.Set(1.5)
	g.Add(-0.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	wantCounts := []uint64{2, 1, 1, 1} // (..1], (1..10], (10..100], +Inf
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], want, s.Counts)
		}
	}
	if math.Abs(s.Sum-5056.2) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
	// The median observation (5) lands in the (1, 10] bucket; p99 in the
	// overflow bucket, which reports the largest finite bound.
	if q := s.Quantile(0.5); q <= 1 || q > 10 {
		t.Fatalf("p50 = %v, want in (1, 10]", q)
	}
	if q := s.Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %v, want 100 (largest finite bound)", q)
	}
	if !math.IsNaN((HistogramSnapshot{}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := New()
	h := r.Histogram("lat_s", LatencyBuckets)
	h.ObserveDuration(200 * time.Microsecond)
	s := r.Snapshot().Histograms["lat_s"]
	if s.Count != 1 || s.Sum != 0.0002 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
}

func TestNilRegistryAndHandlesAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(2)
	r.RecordTrace(QueryTrace{Path: PathEnum})
	if got := r.Traces(); got != nil {
		t.Fatalf("nil registry traces = %v", got)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Traces) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb) // must not panic
}

func TestTraceRingWrapsAndOrders(t *testing.T) {
	r := New()
	total := defaultTraceCap + 10
	for i := 0; i < total; i++ {
		r.RecordTrace(QueryTrace{Path: PathSample, Completed: i})
	}
	traces, n := r.traces.snapshot()
	if n != uint64(total) {
		t.Fatalf("trace total = %d, want %d", n, total)
	}
	if len(traces) != defaultTraceCap {
		t.Fatalf("ring holds %d, want %d", len(traces), defaultTraceCap)
	}
	for i, tr := range traces {
		if want := uint64(10 + i); tr.Seq != want {
			t.Fatalf("trace %d seq = %d, want %d", i, tr.Seq, want)
		}
		if tr.Completed != 10+i {
			t.Fatalf("trace %d out of order: %+v", i, tr)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("naru_queries_total").Add(7)
	r.Gauge("naru_train_epoch_nll").Set(3.25)
	h := r.Histogram("naru_query_latency_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE naru_queries_total counter\nnaru_queries_total 7\n",
		"# TYPE naru_train_epoch_nll gauge\nnaru_train_epoch_nll 3.25\n",
		"# TYPE naru_query_latency_seconds histogram\n",
		"naru_query_latency_seconds_bucket{le=\"0.001\"} 1\n",
		"naru_query_latency_seconds_bucket{le=\"0.01\"} 1\n",
		"naru_query_latency_seconds_bucket{le=\"+Inf\"} 2\n",
		"naru_query_latency_seconds_sum 0.5005\n",
		"naru_query_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := New()
	r.Counter("naru_queries_total").Add(2)
	r.RecordTrace(QueryTrace{Path: PathEnum, Sel: 0.5, LatencyNS: 1000})
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "naru_queries_total 2") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	code, body := get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: code %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v\n%s", err, body)
	}
	if snap.Counters["naru_queries_total"] != 2 || snap.TraceTotal != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	code, body = get("/traces")
	var traces []QueryTrace
	if code != 200 || json.Unmarshal([]byte(body), &traces) != nil || len(traces) != 1 {
		t.Fatalf("/traces: code %d body %q", code, body)
	}
	if traces[0].Path != PathEnum || traces[0].Sel != 0.5 {
		t.Fatalf("trace = %+v", traces[0])
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	r := New()
	r.Counter("up").Inc()
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("endpoint still reachable after shutdown")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"Naru-2000":    "Naru_2000",
		"postgres 1d":  "postgres_1d",
		"9lives":       "_lives",
		"ok_name:sub9": "ok_name:sub9",
	}
	for in, want := range cases {
		if got := Sanitize(in); got != want {
			t.Fatalf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
