package obs

import "sync"

// Query paths recorded in trace records and path counters: which arm of the
// estimator answered (§5's enumeration vs. progressive sampling, plus the
// serving layer's degraded/fallback/failed outcomes from internal/core).
const (
	PathEnum     = "enum"     // exact enumeration (small restricted region)
	PathSample   = "sample"   // full-budget progressive sampling
	PathDegraded = "degraded" // deadline cut the sample budget short
	PathFallback = "fallback" // model path failed; fallback estimator answered
	PathFailed   = "failed"   // model path failed with no (working) fallback
	PathEmpty    = "empty"    // provably empty region, answered without the model
	PathShed     = "shed"     // admission control rejected the query before the model ran
	PathBreaker  = "breaker"  // circuit breaker open: model path bypassed, fallback answered
)

// QueryTrace is one served query's record: which path answered, how much of
// the progressive-sampling budget ran, the Monte Carlo standard error, how
// much of the per-query deadline was left, and whether a panic was contained.
type QueryTrace struct {
	// Seq is the trace's global sequence number, assigned by RecordTrace.
	Seq uint64 `json:"seq"`
	// Path is one of the Path* constants.
	Path string `json:"path"`
	// Requested and Completed are the progressive-sampling budget asked for
	// and actually run (both 0 for enumeration and empty regions).
	Requested int `json:"requested"`
	Completed int `json:"completed"`
	// Sel is the returned selectivity estimate.
	Sel float64 `json:"sel"`
	// StdErr is the Monte Carlo standard error of Sel (0 when exact).
	StdErr float64 `json:"stderr"`
	// LatencyNS is the query's wall-clock service time.
	LatencyNS int64 `json:"latency_ns"`
	// DeadlineSlackNS is the per-query budget remaining at completion
	// (negative when the deadline was overrun; 0 when no deadline was set).
	DeadlineSlackNS int64 `json:"deadline_slack_ns,omitempty"`
	// StopReason, when non-empty, records why sampling stopped short of the
	// full budget ("target_stderr", "deadline", "cancel", "shed") — the
	// distinction between a degraded answer and an early-stopped one that
	// met its accuracy target.
	StopReason string `json:"stop_reason,omitempty"`
	// Recovered marks a contained model-path panic.
	Recovered bool `json:"recovered,omitempty"`
	// Err is the model-path failure, if any (set for fallback and failed).
	Err string `json:"err,omitempty"`
	// ModelVersion is the lifecycle version id of the model that served the
	// query (0 when versioned serving is not in use).
	ModelVersion uint64 `json:"model_version,omitempty"`
	// Tenant is the serving tenant that answered the query (empty for
	// single-tenant serving). Stamped by tenant-labelled registry views.
	Tenant string `json:"tenant,omitempty"`
}

// defaultTraceCap bounds the trace ring: big enough to cover a scrape
// interval of queries, small enough to stay off the allocator's radar.
const defaultTraceCap = 256

// traceRing is a fixed-capacity overwrite-oldest ring of trace records. A
// mutex is fine here: one record per query is orders of magnitude colder
// than the per-sample-path work it summarizes.
type traceRing struct {
	mu   sync.Mutex
	buf  []QueryTrace
	next uint64 // total records ever written
}

func (t *traceRing) init(capacity int) { t.buf = make([]QueryTrace, 0, capacity) }

// RecordTrace appends one record to the ring, assigning its sequence
// number. Tenant-labelled views stamp their tenant into the record and share
// the root's ring. Safe (a no-op) on a nil registry.
func (r *Registry) RecordTrace(tr QueryTrace) {
	if r == nil {
		return
	}
	if tr.Tenant == "" {
		tr.Tenant = r.tenant
	}
	t := &r.root().traces
	t.mu.Lock()
	tr.Seq = t.next
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, tr)
	} else {
		t.buf[t.next%uint64(cap(t.buf))] = tr
	}
	t.next++
	t.mu.Unlock()
}

// snapshot returns the ring's records oldest-first plus the total recorded.
func (t *traceRing) snapshot() ([]QueryTrace, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]QueryTrace, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) || t.next == 0 {
		out = append(out, t.buf...)
	} else {
		start := t.next % uint64(cap(t.buf))
		out = append(out, t.buf[start:]...)
		out = append(out, t.buf[:start]...)
	}
	return out, t.next
}

// Traces returns the retained trace records, oldest first (a view returns
// its root's ring — all tenants). Safe (and empty) on a nil registry.
func (r *Registry) Traces() []QueryTrace {
	if r == nil {
		return nil
	}
	out, _ := r.root().traces.snapshot()
	return out
}
