package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Handler returns the observability endpoint:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   expvar-style JSON snapshot (counters, gauges, histograms,
//	                trace ring) — the Snapshot type, marshaled
//	/traces         JSON array of retained query trace records, oldest first
//	/debug/pprof/*  net/http/pprof (profile, heap, goroutine, trace, ...)
//
// The handler is safe with a nil registry (it serves empty snapshots), so a
// process can expose pprof even with metric collection disabled.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		traces := r.Traces()
		if traces == nil {
			traces = []QueryTrace{}
		}
		writeJSON(w, traces)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve starts the observability endpoint on addr (":0" picks a free port)
// in a background goroutine. It returns the bound address and a shutdown
// function that closes the listener and in-flight connections.
func Serve(addr string, r *Registry) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
