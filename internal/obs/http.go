package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name for stable scrapes.
// Labelled variants of one family (tenant views) are grouped under a single
// TYPE line, and histogram labels are merged with the per-bucket le label.
func (r *Registry) WritePrometheus(w io.Writer) {
	s := r.Snapshot()
	typed := map[string]bool{}
	writeType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, name := range sortedByFamily(s.Counters) {
		base, labels := SplitName(name)
		writeType(base, "counter")
		fmt.Fprintf(w, "%s%s %d\n", base, braced(labels), s.Counters[name])
	}
	for _, name := range sortedByFamily(s.Gauges) {
		base, labels := SplitName(name)
		writeType(base, "gauge")
		fmt.Fprintf(w, "%s%s %g\n", base, braced(labels), s.Gauges[name])
	}
	for _, name := range sortedByFamily(s.Histograms) {
		h := s.Histograms[name]
		base, labels := SplitName(name)
		writeType(base, "histogram")
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLE(labels, formatBound(bound)), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLE(labels, "+Inf"), h.Count)
		fmt.Fprintf(w, "%s_sum%s %g\n", base, braced(labels), h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", base, braced(labels), h.Count)
	}
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// braced wraps a non-empty label set in exposition braces.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// withLE appends the le bucket label to a (possibly empty) label set.
func withLE(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return "{" + labels + "," + le + "}"
}

// sortedByFamily orders metric names by (family, label set), so every
// labelled variant of a family lands contiguously under its TYPE line.
func sortedByFamily[V any](m map[string]V) []string {
	keys := sortedKeys(m)
	sort.SliceStable(keys, func(i, j int) bool {
		bi, li := SplitName(keys[i])
		bj, lj := SplitName(keys[j])
		if bi != bj {
			return bi < bj
		}
		return li < lj
	})
	return keys
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Handler returns the observability endpoint:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   expvar-style JSON snapshot (counters, gauges, histograms,
//	                trace ring) — the Snapshot type, marshaled
//	/traces         JSON array of retained query trace records, oldest first
//	/debug/pprof/*  net/http/pprof (profile, heap, goroutine, trace, ...)
//
// The handler is safe with a nil registry (it serves empty snapshots), so a
// process can expose pprof even with metric collection disabled.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		traces := r.Traces()
		if traces == nil {
			traces = []QueryTrace{}
		}
		writeJSON(w, traces)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve starts the observability endpoint on addr (":0" picks a free port)
// in a background goroutine. It returns the bound address and a shutdown
// function that closes the listener and in-flight connections.
func Serve(addr string, r *Registry) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
