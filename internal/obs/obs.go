// Package obs is the serving and training observability layer: sharded
// counters, gauges, fixed-bucket histograms, and per-query trace records,
// exposed over HTTP as Prometheus text exposition, expvar-style JSON, and
// net/http/pprof (see Handler).
//
// The package is stdlib-only and allocation-light by design. Metric handles
// are resolved from a Registry once (at estimator construction, not per
// query) and updated with atomics; counters stripe their hot field across
// cache lines so concurrent serving workers do not contend. A nil *Registry
// hands out nil handles, and every handle method short-circuits on a nil
// receiver, so instrumented code pays one predictable branch when
// observability is disabled — nothing is computed, recorded, or allocated.
//
// Instrumentation must never perturb results: no handle touches the
// estimator's seeded RNG streams, so estimates are bit-identical with and
// without a registry attached (asserted by internal/core's regression tests).
package obs

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// counterShards stripes each counter across this many cache-line-padded
// slots; Add picks a slot with the runtime's per-thread fast RNG, so
// concurrent workers rarely collide on a line. Must be a power of two.
const counterShards = 16

type counterShard struct {
	n atomic.Uint64
	_ [56]byte // pad to a 64-byte cache line against false sharing
}

// Counter is a monotonically increasing, concurrency-safe counter. All
// methods are no-ops on a nil receiver.
type Counter struct {
	shards [counterShards]counterShard
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[rand.Uint64()&(counterShards-1)].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. It is eventually consistent with concurrent Adds.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is a concurrency-safe float64 cell (last-write-wins). All methods
// are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus "le" semantics: an
// observation lands in the first bucket whose upper bound is >= the value,
// or in the implicit +Inf overflow bucket. Buckets are chosen at
// registration and never change, so Observe is two atomic adds plus a CAS
// for the running sum. All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds; Counts has one extra
	// trailing entry for the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// snapshot copies the live histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by nearest rank over the
// buckets, linearly interpolated inside the containing bucket. Values in the
// overflow bucket report the largest finite bound. Returns NaN when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if cum+c < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket: no finite upper bound
			if len(s.Bounds) == 0 {
				return math.Inf(1)
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		frac := float64(rank-cum) / float64(c)
		return lo + frac*(s.Bounds[i]-lo)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBuckets is the default per-query latency bucketing in seconds:
// exponential from 50µs to ~26s, wide enough for both the enumeration fast
// path and deadline-degraded sampling.
var LatencyBuckets = expBuckets(50e-6, 2, 20)

// expBuckets returns n ascending bounds start, start*factor, ...
func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry names and owns metrics. The zero value is not usable; call New.
// A nil *Registry is valid everywhere and disables collection.
//
// WithLabel derives labelled views of a registry: handles resolved through a
// view register under `name{key="value"}` in the SAME underlying storage, so
// one exposition endpoint serves every view (the multi-tenant server gives
// each tenant a tenant="..." view of one shared registry).
type Registry struct {
	// parent is the storage owner for labelled views (nil on a root registry
	// created by New). Views hold no maps of their own: every handle lookup
	// and trace record delegates to the root, so a view is just a name
	// decorator and can be created per tenant without duplicating state.
	parent *Registry
	// labels is the view's label set without braces, e.g. `tenant="orders"`
	// (empty on the root). It is appended to every metric name this view
	// resolves; WritePrometheus re-parses it into exposition-format labels.
	labels string
	// tenant is the value of the view's tenant label (if any), stamped into
	// trace records so /traces can be filtered per tenant.
	tenant string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	traces   traceRing
}

// New creates an empty registry with a trace ring of the default capacity.
func New() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.traces.init(defaultTraceCap)
	return r
}

// root returns the storage-owning registry (itself for roots).
func (r *Registry) root() *Registry {
	if r.parent != nil {
		return r.parent
	}
	return r
}

// WithLabel returns a view of the registry whose metric names carry an
// additional `key="value"` label. Storage stays in the root registry, so the
// view's families appear in the root's exposition alongside everyone else's.
// Labels compose: a view of a view carries both pairs. The tenant key is
// special-cased into trace records (QueryTrace.Tenant). Nil-safe: a nil
// registry returns nil, so disabling observability disables every view too.
func (r *Registry) WithLabel(key, value string) *Registry {
	if r == nil {
		return nil
	}
	pair := Sanitize(key) + `="` + escapeLabelValue(value) + `"`
	labels := pair
	if r.labels != "" {
		labels = r.labels + "," + pair
	}
	v := &Registry{parent: r.root(), labels: labels, tenant: r.tenant}
	if key == "tenant" {
		v.tenant = value
	}
	return v
}

// name decorates a base metric name with the view's label set.
func (r *Registry) name(base string) string {
	if r.labels == "" {
		return base
	}
	return base + "{" + r.labels + "}"
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// SplitName splits a stored metric name into its base family name and its
// brace-free label set ("" when unlabelled). The exposition writer uses it to
// group label variants under one TYPE line.
func SplitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// Counter returns the named counter, registering it on first use. Returns
// nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	rt := r.root()
	name = r.name(name)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c := rt.counters[name]
	if c == nil {
		c = &Counter{}
		rt.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. Returns nil
// (a valid no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	rt := r.root()
	name = r.name(name)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	g := rt.gauges[name]
	if g == nil {
		g = &Gauge{}
		rt.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// bucket bounds on first use (bounds must be ascending; later calls reuse
// the first registration's buckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	rt := r.root()
	name = r.name(name)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	h := rt.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = LatencyBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
		rt.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of everything the registry holds,
// JSON-marshalable as-is (the expvar-style /metrics.json payload).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Traces are the most recent query trace records, oldest first.
	Traces []QueryTrace `json:"traces"`
	// TraceTotal counts every trace ever recorded, including ones that have
	// rotated out of the ring.
	TraceTotal uint64 `json:"trace_total"`
}

// Snapshot copies the registry. A labelled view snapshots its root — the
// whole registry, every tenant's families included. Safe (and empty) on a
// nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r = r.root()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	s.Traces, s.TraceTotal = r.traces.snapshot()
	return s
}

// Sanitize maps an arbitrary string onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing every other rune with '_'.
func Sanitize(name string) string {
	out := []byte(name)
	for i, b := range out {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		case b >= '0' && b <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
