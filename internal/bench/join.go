package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/neurocard"
	"repro/internal/query"
	"repro/internal/table"
)

// Join benchmarks the NeuroCard-style multi-table estimator: one model
// trained over a skewed 3-table join answers generated multi-table queries,
// graded against the exact nested-loop oracle. The run enforces the accuracy
// gate (median q-error ≤ 2, max ≤ 10 at S=2000) by printing a PASS/FAIL
// verdict line that scripts/check.sh asserts on, and prints a digest of every
// estimate's bits so two runs can be compared for bit-identical determinism.
const (
	joinGateMedian = 2.0
	joinGateMax    = 10.0
)

func Join(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	if cfg.BenchOut == "" {
		cfg.BenchOut = "BENCH_join.json"
	}
	nq := cfg.NumQueries
	if nq < 100 {
		nq = 100
	}

	start := time.Now()
	sch := joinSchema(cfg.DMVRows/100, cfg.Seed)
	progress(out, cfg.Quiet, "join: customers %d ⋈ orders %d ⋈ items %d rows in %v",
		sch.Tables[0].NumRows(), sch.Tables[1].NumRows(), sch.Tables[2].NumRows(),
		time.Since(start).Round(time.Millisecond))

	trainStart := time.Now()
	est, _, err := neurocard.Train(context.Background(), sch, neurocard.Config{
		Hidden: []int{64, 64}, Samples: 2000, Seed: cfg.Seed,
		Epochs: cfg.Epochs, BatchSize: 256, EpochTuples: 1 << 14, LR: 3e-3,
		Workers: cfg.Workers, Obs: cfg.Obs,
	})
	if err != nil {
		fmt.Fprintf(out, "join: training failed: %v\n", err)
		return
	}
	trainSecs := time.Since(trainStart).Seconds()
	progress(out, cfg.Quiet, "join: model over %d columns trained in %.1fs (join size %d)",
		len(est.Columns()), trainSecs, est.JoinSize())

	// Raw sampler throughput, the training-side bottleneck.
	smp := est.Sampler()
	const tuples = 1 << 15
	buf := make([]int32, tuples*smp.NumCols())
	sampStart := time.Now()
	smp.Fill(buf, cfg.Seed+50, tuples)
	tupRate := tuples / time.Since(sampStart).Seconds()

	oracle := neurocard.NewOracle(sch)
	queries, truths := joinQueries(est, oracle, nq, cfg.Seed+7)
	progress(out, cfg.Quiet, "join: %d queries labeled against the nested-loop oracle", len(queries))

	ests := make([]float64, len(queries))
	estStart := time.Now()
	for i, q := range queries {
		card, _, err := est.EstimateQuery(q)
		if err != nil {
			fmt.Fprintf(out, "join: query %d: %v\n", i, err)
			return
		}
		ests[i] = card
	}
	estTotal := time.Since(estStart)
	qps := float64(len(queries)) / estTotal.Seconds()

	qerrs := make([]float64, len(queries))
	digest := fnv.New64a()
	for i, card := range ests {
		qerrs[i] = metrics.QError(card, float64(truths[i]))
		var bits [8]byte
		u := math.Float64bits(card)
		for b := 0; b < 8; b++ {
			bits[b] = byte(u >> (8 * b))
		}
		digest.Write(bits[:])
	}
	sort.Float64s(qerrs)
	med := qerrs[len(qerrs)/2]
	max := qerrs[len(qerrs)-1]

	fmt.Fprintf(out, "\nJoin estimation (customers ⋈ orders ⋈ items, %d queries, Naru-2000)\n", len(queries))
	fmt.Fprintf(out, "q-error: median %.3f  p90 %.3f  p99 %.3f  max %.3f\n",
		med, qerrs[len(qerrs)*90/100], qerrs[len(qerrs)*99/100], max)
	fmt.Fprintf(out, "throughput: %.1f queries/sec (serving), %.0f tuples/sec (sampler)\n", qps, tupRate)
	fmt.Fprintf(out, "join digest: %016x\n", digest.Sum64())
	verdict := "PASS"
	if med > joinGateMedian || max > joinGateMax {
		verdict = "FAIL"
	}
	fmt.Fprintf(out, "join gate: median %.3f (limit %.1f), max %.3f (limit %.1f) -> %s\n",
		med, joinGateMedian, max, joinGateMax, verdict)

	entries := []BenchEntry{
		{Name: "join_queries_per_sec", Value: qps, Unit: "queries/sec",
			Extra: fmt.Sprintf("3-table join, S=2000, %d queries", len(queries))},
		{Name: "join_sampler_tuples_per_sec", Value: tupRate, Unit: "rows/sec",
			Extra: "streaming uniform join-tuple sampler"},
		{Name: "join_qerror_median", Value: med, Unit: "q-error",
			Extra: fmt.Sprintf("vs nested-loop oracle, gate %.1f", joinGateMedian)},
		{Name: "join_qerror_max", Value: max, Unit: "q-error",
			Extra: fmt.Sprintf("vs nested-loop oracle, gate %.1f", joinGateMax)},
		{Name: "join_train_seconds", Value: trainSecs, Unit: "s",
			Extra: fmt.Sprintf("%d epochs over streamed join tuples", cfg.Epochs)},
	}
	if err := writeBenchJSON(cfg.BenchOut, entries); err != nil {
		fmt.Fprintf(out, "join: writing %s: %v\n", cfg.BenchOut, err)
		return
	}
	fmt.Fprintf(out, "wrote %s\n", cfg.BenchOut)
}

// joinSchema generates the benchmark's skewed, referentially complete
// 3-table schema: a heavy head of customers places most orders; big orders
// carry more items. Sizes scale with the customer count (cfg.DMVRows/100).
func joinSchema(customers int, seed int64) *neurocard.Schema {
	if customers < 100 {
		customers = 100
	}
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"east", "west", "north", "south", "core", "edge"}

	cb := table.NewBuilder("customers", []string{"cid", "region", "tier"})
	ob := table.NewBuilder("orders", []string{"oid", "cid", "amount"})
	ib := table.NewBuilder("items", []string{"oid", "price"})
	oid := 0
	for cid := 0; cid < customers; cid++ {
		region := regions[rng.Intn(len(regions))]
		tier := strconv.Itoa(cid % 3)
		mustAppend(cb, []string{strconv.Itoa(cid), region, tier})
		orders := 1 + rng.Intn(6)
		if cid < customers/10 { // heavy head
			orders = 12 + rng.Intn(12)
		}
		for o := 0; o < orders; o++ {
			amount := 10 + rng.Intn(50)
			if cid < customers/10 {
				amount += 40
			}
			mustAppend(ob, []string{strconv.Itoa(oid), strconv.Itoa(cid), strconv.Itoa(amount)})
			items := 1 + rng.Intn(3)
			if amount >= 60 {
				items += 2
			}
			for i := 0; i < items; i++ {
				mustAppend(ib, []string{strconv.Itoa(oid), strconv.Itoa(5 * rng.Intn(12))})
			}
			oid++
		}
	}
	build := func(b *table.Builder) *table.Table {
		t, err := b.Build()
		if err != nil {
			panic(err)
		}
		return t
	}
	return &neurocard.Schema{
		Tables: []*table.Table{build(cb), build(ob), build(ib)},
		Edges: []neurocard.Edge{
			{Parent: 0, Child: 1, ParentCol: 0, ChildCol: 1},
			{Parent: 1, Child: 2, ParentCol: 0, ChildCol: 0},
		},
	}
}

func mustAppend(b *table.Builder, row []string) {
	if err := b.AppendRow(row); err != nil {
		panic(err)
	}
}

// joinQueries generates n multi-table conjunctive queries anchored at
// sampled join tuples (so predicates land on populated regions) and labels
// each with the oracle. Queries with oracle truth below 20 are redrawn — a
// truth floor keeps relative error meaningful at the gate's scale.
func joinQueries(est *neurocard.Estimator, oracle *neurocard.Oracle, n int, seed int64) ([]query.Query, []int64) {
	smp := est.Sampler()
	lay := smp.Layout()
	rng := rand.New(rand.NewSource(seed))

	// Predicable columns: base columns of the layout, with their table and
	// whether equality (small domains) or ranges (large) suit them.
	type candidate struct {
		col    int
		ranged bool
	}
	var cands []candidate
	lt := est.LayoutTable()
	for i, lc := range lay.Cols {
		if lc.Edge >= 0 {
			continue
		}
		cands = append(cands, candidate{col: i, ranged: lt.Cols[i].DomainSize() > 8})
	}

	anchorBatch := smp.Batch(seed, n*4)
	nc := smp.NumCols()

	var queries []query.Query
	var truths []int64
	for a := 0; len(queries) < n && a < n*4; a++ {
		anchor := anchorBatch[a*nc : (a+1)*nc]
		// 1–3 predicates over distinct columns, anchored at the tuple.
		k := 1 + rng.Intn(3)
		perm := rng.Perm(len(cands))
		var preds []query.Predicate
		for _, ci := range perm[:k] {
			c := cands[ci]
			code := anchor[c.col]
			if !c.ranged {
				preds = append(preds, query.Predicate{Col: c.col, Op: query.OpEq, Code: code})
				continue
			}
			if rng.Intn(2) == 0 {
				preds = append(preds, query.Predicate{Col: c.col, Op: query.OpLe, Code: code})
			} else {
				preds = append(preds, query.Predicate{Col: c.col, Op: query.OpGe, Code: code})
			}
		}
		q := query.Query{Preds: preds}
		truth, err := oracle.Count(smp, q)
		if err != nil {
			panic(err)
		}
		if truth < 20 {
			continue
		}
		queries = append(queries, q)
		truths = append(truths, truth)
	}
	if len(queries) < n {
		panic(fmt.Sprintf("bench: only %d of %d join queries cleared the truth floor", len(queries), n))
	}
	return queries, truths
}
