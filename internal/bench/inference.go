package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	naru "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/query"
)

// This file benchmarks the inference fast path: delta-forward sampling,
// packed GEMM kernels, and concurrent serving, against the reference
// full-forward sequential estimator. Results are printed as a table and
// written to BenchOut in the github-action-benchmark "customSmallerIsBetter /
// customBiggerIsBetter" JSON shape: an array of {name, value, unit, extra}.

// BenchEntry is one github-action-benchmark datum.
type BenchEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// fullForward hides a model's BeginSampling (and ForkModel) methods, so the
// estimator serves it sequentially with a full forward pass per column — the
// seed's behavior, kept as the performance and correctness reference.
type fullForward struct{ core.Model }

// Inference runs the DMV workload through three serving configurations —
// reference full-forward sequential, fast-path sequential, and fast-path
// concurrent batch — and reports throughput, latency quantiles, and the
// agreement between fast and reference estimates.
func Inference(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	if cfg.BenchOut == "" {
		cfg.BenchOut = "BENCH_inference.json"
	}
	start := time.Now()
	t := datagen.DMV(cfg.DMVRows, cfg.Seed)
	progress(out, cfg.Quiet, "inference: generated %d rows in %v", t.NumRows(), time.Since(start).Round(time.Millisecond))
	w := mustWorkload(t, query.DefaultGeneratorConfig(), cfg.Seed+100, cfg.NumQueries)
	progress(out, cfg.Quiet, "inference: %d queries labeled", len(w.Queries))

	trainStart := time.Now()
	model := TrainNaru(t, DMVModelConfig(cfg.Seed), cfg.Epochs, cfg.Seed+200)
	progress(out, cfg.Quiet, "inference: Naru trained in %v", time.Since(trainStart).Round(time.Millisecond))

	const samples = 1000
	qseed := cfg.Seed + 6

	// Reference: full forward per column, one query at a time.
	ref := core.NewEstimator(fullForward{core.Model(model)}, samples, qseed)
	refRes := RunWorkload(ref, w)
	refTotal := sumLatency(refRes.Latencies)

	// Fast path, sequential: delta-forward + packed kernels, same seeds.
	seq := core.NewEstimator(model, samples, qseed)
	seqRes := RunWorkload(seq, w)
	seqTotal := sumLatency(seqRes.Latencies)

	// Fused cross-query batch on a fresh estimator (same seeds again, so the
	// fused scheduler must reproduce the sequential fast-path answers
	// bitwise). Workers is pinned to 1 so this row measures the scheduler
	// itself — cross-query amortization with no thread parallelism — and the
	// "fused at one worker must not lose to sequential" gate has a direct
	// reading. Telemetry, when enabled, watches this configuration — the
	// mismatch check below doubles as proof that observing it is free of
	// perturbation. The Mallocs delta around the run prices the scheduler's
	// allocation overhead per query.
	batch := core.NewEstimator(model, samples, qseed)
	batch.SetObserver(cfg.Obs)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	fusedStart := time.Now()
	fusedRes := batch.EstimateFused(context.Background(), w.Regions, core.ServeOptions{Workers: 1})
	batchTotal := time.Since(fusedStart)
	runtime.ReadMemStats(&ms1)
	batchEsts := make([]float64, len(fusedRes))
	for i, r := range fusedRes {
		batchEsts[i] = r.Sel
	}

	mismatches := 0
	for i := range seqRes.Estimates {
		if batchEsts[i] != seqRes.Estimates[i] {
			mismatches++
		}
	}
	maxRel := maxRelDiff(seqRes.Estimates, refRes.Estimates)
	allocsPerQuery := float64(ms1.Mallocs-ms0.Mallocs) / float64(len(w.Regions))

	// Parallel fused: the same scheduler with its full worker budget —
	// pending queries sharded across pooled replicas, tall blocks row-sharded
	// across cores. Results must still match the sequential fast path bitwise
	// (worker count is a pure throughput knob).
	parWorkers := cfg.Workers
	if parWorkers <= 0 {
		parWorkers = runtime.NumCPU()
	}
	par := core.NewEstimator(model, samples, qseed)
	var pm0, pm1 runtime.MemStats
	runtime.ReadMemStats(&pm0)
	parStart := time.Now()
	parRes := par.EstimateFused(context.Background(), w.Regions, core.ServeOptions{Workers: parWorkers})
	parTotal := time.Since(parStart)
	runtime.ReadMemStats(&pm1)
	parMismatches := 0
	for i := range seqRes.Estimates {
		if parRes[i].Sel != seqRes.Estimates[i] {
			parMismatches++
		}
	}
	parAllocsPerQuery := float64(pm1.Mallocs-pm0.Mallocs) / float64(len(w.Regions))

	// Concurrent load through the request coalescer: 32 clients each submit
	// single queries, which the coalescer packs into fused dispatches. This is
	// the serving-path configuration (naru serve -batch-window) and records
	// client-observed latency quantiles under saturation.
	const clients = 32
	coalEst := naru.NewFromModel(model, t, naru.Config{Samples: samples, Seed: qseed - 2})
	coal := coalEst.NewCoalescer(naru.CoalesceOptions{})
	var (
		latMu    sync.Mutex
		coalLats = make([]time.Duration, 0, len(w.Queries))
		coalErrs int
		wg       sync.WaitGroup
	)
	loadStart := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(w.Queries); i += clients {
				qStart := time.Now()
				res := coal.Estimate(context.Background(), w.Queries[i])
				d := time.Since(qStart)
				latMu.Lock()
				coalLats = append(coalLats, d)
				if res.Err != nil {
					coalErrs++
				}
				latMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	loadTotal := time.Since(loadStart)
	coal.Close()
	coalQPS := float64(len(w.Queries)) / loadTotal.Seconds()
	coalP50, coalP99, _ := LatencySummary(coalLats)

	nq := float64(len(w.Regions))
	refQPS := nq / refTotal.Seconds()
	seqQPS := nq / seqTotal.Seconds()
	batchQPS := nq / batchTotal.Seconds()
	parQPS := nq / parTotal.Seconds()
	p50, p99, pmax := LatencySummary(seqRes.Latencies)
	refErr := metrics.Summarize(refRes.Errors(w))
	seqErr := metrics.Summarize(seqRes.Errors(w))

	fmt.Fprintf(out, "\nInference fast path (DMV %d rows, %d queries, Naru-%d)\n",
		t.NumRows(), len(w.Regions), samples)
	fmt.Fprintf(out, "%-28s %12s %14s\n", "configuration", "queries/sec", "total")
	fmt.Fprintf(out, "%-28s %12.2f %14v\n", "reference (full forward)", refQPS, refTotal.Round(time.Millisecond))
	fmt.Fprintf(out, "%-28s %12.2f %14v\n", "fast path, sequential", seqQPS, seqTotal.Round(time.Millisecond))
	fmt.Fprintf(out, "%-28s %12.2f %14v\n", "fast path, fused batch", batchQPS, batchTotal.Round(time.Millisecond))
	fmt.Fprintf(out, "%-28s %12.2f %14v\n", fmt.Sprintf("fused parallel, W=%d", parWorkers), parQPS, parTotal.Round(time.Millisecond))
	fmt.Fprintf(out, "%-28s %12.2f %14v\n", fmt.Sprintf("coalesced, %d clients", clients), coalQPS, loadTotal.Round(time.Millisecond))
	fmt.Fprintf(out, "speedup: sequential %.2fx, fused batch %.2fx, fused parallel %.2fx\n",
		seqQPS/refQPS, batchQPS/refQPS, parQPS/refQPS)
	fmt.Fprintf(out, "fast-path latency ms: p50=%.2f p99=%.2f max=%.2f\n", p50, p99, pmax)
	fmt.Fprintf(out, "coalesced client latency ms: p50=%.2f p99=%.2f (%d errors)\n", coalP50, coalP99, coalErrs)
	fmt.Fprintf(out, "fused allocations: %.0f allocs/query (parallel %.0f)\n", allocsPerQuery, parAllocsPerQuery)
	fmt.Fprintf(out, "fused batch vs sequential fast path: %d/%d mismatched estimates (must be 0)\n",
		mismatches, len(w.Regions))
	fmt.Fprintf(out, "fused parallel vs sequential fast path: %d/%d mismatched estimates (must be 0)\n",
		parMismatches, len(w.Regions))
	fmt.Fprintf(out, "fast vs reference estimates: max relative diff %.3g (MC re-draws at float-identical boundaries)\n", maxRel)
	fmt.Fprintf(out, "q-error median/p99: reference %.3f/%.3f, fast %.3f/%.3f\n",
		refErr.Median, refErr.P99, seqErr.Median, seqErr.P99)

	entries := []BenchEntry{
		{Name: "dmv_queries_per_sec_reference", Value: refQPS, Unit: "queries/sec",
			Extra: fmt.Sprintf("full forward, sequential, S=%d", samples)},
		{Name: "dmv_queries_per_sec_sequential", Value: seqQPS, Unit: "queries/sec",
			Extra: "delta-forward + packed GEMM, sequential"},
		{Name: "dmv_queries_per_sec_batch", Value: batchQPS, Unit: "queries/sec",
			Extra: "fused cross-query scheduler (EstimateFused), one worker, whole workload in flight"},
		{Name: "dmv_queries_per_sec_fused_parallel", Value: parQPS, Unit: "queries/sec",
			Extra: fmt.Sprintf("fused scheduler, shard + row parallelism, workers=%d numcpu=%d", parWorkers, runtime.NumCPU())},
		{Name: "dmv_fused_parallel_mismatches", Value: float64(parMismatches), Unit: "queries",
			Extra: fmt.Sprintf("parallel fused (workers=%d) vs sequential fast path, bitwise", parWorkers)},
		{Name: "dmv_fused_parallel_allocs_per_query", Value: parAllocsPerQuery, Unit: "allocs/query",
			Extra: fmt.Sprintf("Mallocs delta around the parallel fused run, workers=%d numcpu=%d", parWorkers, runtime.NumCPU())},
		{Name: "dmv_speedup_vs_full_forward", Value: batchQPS / refQPS, Unit: "x",
			Extra: fmt.Sprintf("fused batch over reference; sequential alone %.2fx", seqQPS/refQPS)},
		{Name: "dmv_latency_p50", Value: p50, Unit: "ms", Extra: "fast path, sequential"},
		{Name: "dmv_latency_p99", Value: p99, Unit: "ms", Extra: "fast path, sequential"},
		{Name: "dmv_batch_mismatches", Value: float64(mismatches), Unit: "queries",
			Extra: "fused batch vs sequential fast path, bitwise"},
		{Name: "dmv_max_rel_diff_vs_reference", Value: maxRel, Unit: "fraction",
			Extra: "fast path vs full forward selectivities"},
		{Name: "dmv_batch_allocs_per_query", Value: allocsPerQuery, Unit: "allocs/query",
			Extra: "Mallocs delta around the fused batch run"},
		{Name: "dmv_coalesced_queries_per_sec", Value: coalQPS, Unit: "queries/sec",
			Extra: fmt.Sprintf("request coalescer, %d concurrent clients, %d shed/errors", clients, coalErrs)},
		{Name: "dmv_coalesced_latency_p50", Value: coalP50, Unit: "ms",
			Extra: "client-observed, includes batch-window wait"},
		{Name: "dmv_coalesced_latency_p99", Value: coalP99, Unit: "ms",
			Extra: "client-observed, includes batch-window wait"},
	}
	entries = append(entries, obsEntries(cfg.Obs, out)...)
	if err := writeBenchJSON(cfg.BenchOut, entries); err != nil {
		fmt.Fprintf(out, "inference: writing %s: %v\n", cfg.BenchOut, err)
		return
	}
	fmt.Fprintf(out, "wrote %s\n", cfg.BenchOut)
}

// obsEntries folds the observability registry's view of the batch run into
// the benchmark JSON: the per-query latency histogram quantiles (the numbers
// an operator would scrape from /metrics) and the path-counter breakdown.
// Returns nil when telemetry is disabled.
func obsEntries(reg *obs.Registry, out io.Writer) []BenchEntry {
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	h, ok := snap.Histograms["naru_query_latency_seconds"]
	if !ok || h.Count == 0 {
		return nil
	}
	paths := fmt.Sprintf("enum=%d sample=%d empty=%d",
		snap.Counters["naru_query_path_enum_total"],
		snap.Counters["naru_query_path_sample_total"],
		snap.Counters["naru_query_path_empty_total"])
	fmt.Fprintf(out, "observed latency ms (histogram): p50=%.2f p99=%.2f over %d queries (%s)\n",
		h.Quantile(0.50)*1e3, h.Quantile(0.99)*1e3, h.Count, paths)
	return []BenchEntry{
		{Name: "dmv_obs_latency_p50", Value: h.Quantile(0.50) * 1e3, Unit: "ms",
			Extra: "naru_query_latency_seconds histogram, batch fast path"},
		{Name: "dmv_obs_latency_p99", Value: h.Quantile(0.99) * 1e3, Unit: "ms",
			Extra: "naru_query_latency_seconds histogram, batch fast path"},
		{Name: "dmv_obs_queries_observed", Value: float64(snap.Counters["naru_queries_total"]), Unit: "queries",
			Extra: paths},
	}
}

func writeBenchJSON(path string, entries []BenchEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sumLatency(lats []time.Duration) time.Duration {
	var total time.Duration
	for _, d := range lats {
		total += d
	}
	return total
}

// maxRelDiff returns max_i |a_i - b_i| / max(|b_i|, floor) with a small floor
// so empty-region zeros do not blow up the ratio.
func maxRelDiff(a, b []float64) float64 {
	const floor = 1e-9
	var mx float64
	for i := range a {
		den := math.Abs(b[i])
		if den < floor {
			den = floor
		}
		if d := math.Abs(a[i]-b[i]) / den; d > mx {
			mx = d
		}
	}
	return mx
}
