package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, path string, entries []BenchEntry) {
	t.Helper()
	if err := writeBenchJSON(path, entries); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryAppendAndCheck: appending records per-commit entries, and the
// regression gate passes identical results, fails >10% losses in the
// unit-appropriate direction, and ignores non-gated units and new metrics.
func TestHistoryAppendAndCheck(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "history.json")
	bench := filepath.Join(dir, "BENCH_inference.json")

	base := []BenchEntry{
		{Name: "qps", Value: 100, Unit: "queries/sec"},
		{Name: "p99", Value: 50, Unit: "ms"},
		{Name: "mismatches", Value: 0, Unit: "queries"},
	}
	writeBench(t, bench, base)
	// No baseline recorded yet: the gate must pass.
	if err := CheckRegression(hist, bench, "inference", 0.10); err != nil {
		t.Fatalf("empty history: %v", err)
	}
	if err := AppendHistory(hist, bench, "inference"); err != nil {
		t.Fatal(err)
	}
	got, err := readHistory(hist)
	if err != nil || len(got) != 1 {
		t.Fatalf("history after append: %v, %v", got, err)
	}
	if got[0].Bench != "inference" || got[0].Commit == "" || len(got[0].Entries) != 3 {
		t.Fatalf("recorded entry malformed: %+v", got[0])
	}

	// Identical re-run: passes.
	if err := CheckRegression(hist, bench, "inference", 0.10); err != nil {
		t.Fatalf("identical run flagged: %v", err)
	}
	// Within tolerance: passes.
	writeBench(t, bench, []BenchEntry{
		{Name: "qps", Value: 95, Unit: "queries/sec"},
		{Name: "p99", Value: 54, Unit: "ms"},
	})
	if err := CheckRegression(hist, bench, "inference", 0.10); err != nil {
		t.Fatalf("5%%/8%% drift flagged: %v", err)
	}
	// Throughput collapse: fails, naming the metric.
	writeBench(t, bench, []BenchEntry{{Name: "qps", Value: 80, Unit: "queries/sec"}})
	err = CheckRegression(hist, bench, "inference", 0.10)
	if err == nil || !strings.Contains(err.Error(), "qps") {
		t.Fatalf("20%% throughput loss not flagged: %v", err)
	}
	// Latency blowup: fails (lower is better for ms).
	writeBench(t, bench, []BenchEntry{{Name: "p99", Value: 80, Unit: "ms"}})
	if err := CheckRegression(hist, bench, "inference", 0.10); err == nil {
		t.Fatal("60% latency increase not flagged")
	}
	// Faster is never a regression; non-gated units and unknown names skip.
	writeBench(t, bench, []BenchEntry{
		{Name: "qps", Value: 500, Unit: "queries/sec"},
		{Name: "p99", Value: 5, Unit: "ms"},
		{Name: "mismatches", Value: 7, Unit: "queries"},
		{Name: "brand_new", Value: 1, Unit: "ms"},
	})
	if err := CheckRegression(hist, bench, "inference", 0.10); err != nil {
		t.Fatalf("improvement flagged: %v", err)
	}
	// A different bench name has no baseline: passes.
	if err := CheckRegression(hist, bench, "training", 0.10); err != nil {
		t.Fatalf("unrelated bench gated: %v", err)
	}
}
