package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/estimator"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Result holds one estimator's per-query estimates and latencies over a
// workload.
type Result struct {
	Estimator string
	SizeBytes int64
	Estimates []float64       // selectivity fractions
	Latencies []time.Duration // per-query wall clock
}

// RunWorkload evaluates one estimator over a labeled workload, timing each
// estimate.
func RunWorkload(e estimator.Interface, w *query.Workload) *Result {
	r := &Result{
		Estimator: e.Name(),
		SizeBytes: e.SizeBytes(),
		Estimates: make([]float64, len(w.Regions)),
		Latencies: make([]time.Duration, len(w.Regions)),
	}
	for i, reg := range w.Regions {
		start := time.Now()
		r.Estimates[i] = e.EstimateRegion(reg)
		r.Latencies[i] = time.Since(start)
	}
	return r
}

// BatchInterface is the optional batch entry point concurrent estimators
// expose (core.Estimator does); RunWorkloadParallel uses it when present.
type BatchInterface interface {
	estimator.Interface
	EstimateBatch(regions []*query.Region, workers int) []float64
}

// RunWorkloadParallel evaluates an estimator over a workload through its
// batch entry point, fanning queries across up to workers goroutines, and
// returns the results plus the aggregate wall time. Estimators without a
// batch entry point fall back to the sequential runner. Per-query latencies
// are not recorded on the parallel path (they overlap).
func RunWorkloadParallel(e estimator.Interface, w *query.Workload, workers int) (*Result, time.Duration) {
	be, ok := e.(BatchInterface)
	if !ok {
		start := time.Now()
		r := RunWorkload(e, w)
		return r, time.Since(start)
	}
	start := time.Now()
	ests := be.EstimateBatch(w.Regions, workers)
	return &Result{Estimator: e.Name(), SizeBytes: e.SizeBytes(), Estimates: ests}, time.Since(start)
}

// Errors converts a result to per-query q-errors (cardinality space, floored
// at one tuple — §6.1.3).
func (r *Result) Errors(w *query.Workload) []float64 {
	out := make([]float64, len(r.Estimates))
	n := float64(w.NumRows)
	for i := range out {
		out[i] = metrics.QError(r.Estimates[i]*n, float64(w.TrueCard[i]))
	}
	return out
}

// BucketedSummaries groups q-errors by the paper's selectivity bands and
// summarizes each group.
func (r *Result) BucketedSummaries(w *query.Workload) map[metrics.SelectivityBucket]metrics.Summary {
	byBucket := map[metrics.SelectivityBucket][]float64{}
	errs := r.Errors(w)
	for i, e := range errs {
		b := metrics.Bucket(w.TrueSelectivity(i))
		byBucket[b] = append(byBucket[b], e)
	}
	out := map[metrics.SelectivityBucket]metrics.Summary{}
	for b, es := range byBucket {
		out[b] = metrics.Summarize(es)
	}
	return out
}

// PrintErrorTable renders the paper-style error table (one row per
// estimator, columns = median/95th/99th/max per selectivity band).
func PrintErrorTable(out io.Writer, title string, results []*Result, w *query.Workload) {
	fmt.Fprintf(out, "\n%s\n", title)
	// Bucket counts header.
	counts := map[metrics.SelectivityBucket]int{}
	for i := range w.Queries {
		counts[metrics.Bucket(w.TrueSelectivity(i))]++
	}
	fmt.Fprintf(out, "queries: high=%d medium=%d low=%d (total %d)\n",
		counts[metrics.High], counts[metrics.Medium], counts[metrics.Low], len(w.Queries))
	fmt.Fprintf(out, "%-12s %-9s", "Estimator", "Size")
	fmt.Fprintf(out, " | %28s | %28s | %28s\n",
		"High: med/95/99/max", "Medium: med/95/99/max", "Low: med/95/99/max")
	for _, r := range results {
		sums := r.BucketedSummaries(w)
		fmt.Fprintf(out, "%-12s %-9s", r.Estimator, humanBytes(r.SizeBytes))
		for _, b := range []metrics.SelectivityBucket{metrics.High, metrics.Medium, metrics.Low} {
			s, ok := sums[b]
			if !ok {
				fmt.Fprintf(out, " | %28s", "-")
				continue
			}
			fmt.Fprintf(out, " | %6s %6s %6s %6s",
				fmtErr(s.Median), fmtErr(s.P95), fmtErr(s.P99), fmtErr(s.Max))
		}
		fmt.Fprintln(out)
	}
}

// NamedErrors pairs an estimator label with its per-query q-errors.
type NamedErrors struct {
	Name string
	Errs []float64
}

// PrintQuantileTable renders a simple med/95/99/max table (Tables 5 and 8).
func PrintQuantileTable(out io.Writer, title string, rows []NamedErrors) {
	fmt.Fprintf(out, "\n%s\n%-16s %8s %8s %8s %8s\n", title, "Estimator", "Median", "95th", "99th", "Max")
	for _, row := range rows {
		s := metrics.Summarize(row.Errs)
		fmt.Fprintf(out, "%-16s %8s %8s %8s %8s\n",
			row.Name, fmtErr(s.Median), fmtErr(s.P95), fmtErr(s.P99), fmtErr(s.Max))
	}
}

// LatencySummary reports latency quantiles in milliseconds.
func LatencySummary(lats []time.Duration) (p50, p99, max float64) {
	ms := make([]float64, len(lats))
	for i, d := range lats {
		ms[i] = float64(d) / 1e6
	}
	sort.Float64s(ms)
	return metrics.Quantile(ms, 0.5), metrics.Quantile(ms, 0.99), metrics.Quantile(ms, 1)
}

// fmtErr renders a q-error the way the paper does: two decimals for small
// values, scientific-ish for huge ones.
func fmtErr(v float64) string {
	switch {
	case v != v: // NaN: empty bucket
		return "-"
	case v >= 1e5:
		return fmt.Sprintf("%.0e", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
