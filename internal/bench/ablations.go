package bench

import (
	"fmt"
	"io"

	"repro/internal/colnet"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/made"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/transformer"
)

// ArchComparison reproduces the §4.3 architecture study: train architecture
// A (per-column nets), architecture B (masked MLP / MADE — the paper's
// default), and the Transformer variant on Conviva-A at comparable parameter
// budgets, and report size, entropy gap, and worst-case q-error.
func ArchComparison(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	t := datagen.ConvivaA(cfg.ConvivaRows, cfg.Seed)
	dataH := core.DataEntropy(t)
	w := mustWorkload(t, query.DefaultGeneratorConfig(), cfg.Seed+100, minInt(cfg.NumQueries, 80))
	fmt.Fprintf(out, "\nArchitecture comparison on Conviva-A (§4.3; %d epochs, H(P)=%.2f bits)\n",
		cfg.Epochs, dataH)
	fmt.Fprintf(out, "%-16s %10s %14s %12s\n", "Architecture", "Size(MB)", "EntropyGap", "MaxQError")

	type entry struct {
		name  string
		model core.Trainable
	}
	entries := []entry{
		{"A (per-column)", colnet.New(t.DomainSizes(), colnet.Config{
			Hidden: 64, Layers: 2, EmbedThreshold: 64, EmbedDim: 64, Seed: cfg.Seed})},
		{"B (MADE)", made.New(t.DomainSizes(), ConvivaModelConfig(cfg.Seed))},
		{"Transformer", transformer.New(t.DomainSizes(), transformer.Config{
			DModel: 32, Layers: 2, Seed: cfg.Seed})},
	}
	for _, e := range entries {
		core.Train(e.model, t, core.TrainConfig{
			Epochs: cfg.Epochs, BatchSize: 512, LR: 2e-3, Seed: cfg.Seed + 200})
		gap := core.CrossEntropy(e.model, t, 20000) - dataH
		est := core.NewEstimator(e.model, 1000, cfg.Seed+7)
		r := RunWorkload(est, w)
		fmt.Fprintf(out, "%-16s %10.2f %11.2f bits %12s\n",
			e.name, float64(e.model.SizeBytes())/1e6, gap,
			fmtErr(metrics.Quantile(r.Errors(w), 1)))
		progress(out, cfg.Quiet, "arch: %s done", e.name)
	}
}

// UniformVsProgressive quantifies the §5.1 "first attempt" failure mode on
// the DMV analogue: the same trained model queried with naive uniform region
// sampling versus progressive sampling, at equal sample counts.
func UniformVsProgressive(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	t := datagen.DMV(cfg.DMVRows, cfg.Seed)
	w := mustWorkload(t, query.DefaultGeneratorConfig(), cfg.Seed+100, minInt(cfg.NumQueries, 80))
	m := TrainNaru(t, DMVModelConfig(cfg.Seed), cfg.Epochs, cfg.Seed+200)
	est := core.NewEstimator(m, 1000, cfg.Seed+7)

	n := float64(t.NumRows())
	var uniErrs, progErrs []float64
	var uniZeros int
	for i, reg := range w.Regions {
		truth := float64(w.TrueCard[i])
		u := est.UniformRegionSample(reg, 1000)
		if u == 0 {
			uniZeros++
		}
		uniErrs = append(uniErrs, metrics.QError(u*n, truth))
		p := est.ProgressiveSample(reg, 1000)
		progErrs = append(progErrs, metrics.QError(p*n, truth))
	}
	fmt.Fprintf(out, "\nUniform vs progressive sampling on DMV (§5.1, same model, 1000 samples, %d queries)\n", len(w.Regions))
	us, ps := metrics.Summarize(uniErrs), metrics.Summarize(progErrs)
	fmt.Fprintf(out, "%-14s %8s %8s %8s %8s  (zero estimates)\n", "Sampler", "Median", "95th", "99th", "Max")
	fmt.Fprintf(out, "%-14s %8s %8s %8s %8s  %d/%d\n", "Uniform",
		fmtErr(us.Median), fmtErr(us.P95), fmtErr(us.P99), fmtErr(us.Max), uniZeros, len(w.Regions))
	fmt.Fprintf(out, "%-14s %8s %8s %8s %8s\n", "Progressive",
		fmtErr(ps.Median), fmtErr(ps.P95), fmtErr(ps.P99), fmtErr(ps.Max))
}
