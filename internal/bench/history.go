package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"
)

// Benchmark history: narubench appends one HistoryEntry per run to a JSON
// file, keyed by commit, so per-commit throughput/latency/allocation trends
// are recorded in-repo (the github-action-benchmark model, without the
// action). CheckRegression gates a new result file against the most recent
// recorded entry.

// HistoryEntry is one benchmark run: the commit it ran at and the entries it
// produced.
type HistoryEntry struct {
	Commit  string       `json:"commit"`
	Date    string       `json:"date"`
	Bench   string       `json:"bench"`
	Entries []BenchEntry `json:"entries"`
}

// readHistory loads the history file; a missing file is an empty history.
func readHistory(path string) ([]HistoryEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var hist []HistoryEntry
	if err := json.Unmarshal(data, &hist); err != nil {
		return nil, fmt.Errorf("bench: parsing history %s: %w", path, err)
	}
	return hist, nil
}

// gitCommit returns the working tree's HEAD hash, or "unknown" outside a git
// checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// AppendHistory reads a benchmark result file (the BenchEntry array shape)
// and appends it to the history file as one per-commit entry.
func AppendHistory(historyPath, benchPath, benchName string) error {
	entries, err := readBenchJSON(benchPath)
	if err != nil {
		return err
	}
	hist, err := readHistory(historyPath)
	if err != nil {
		return err
	}
	hist = append(hist, HistoryEntry{
		Commit:  gitCommit(),
		Date:    time.Now().UTC().Format(time.RFC3339),
		Bench:   benchName,
		Entries: entries,
	})
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(historyPath, append(data, '\n'), 0o644)
}

// betterDirection classifies a benchmark unit: +1 higher-is-better, -1
// lower-is-better, 0 not gated (counts like bitwise mismatches are asserted
// exactly elsewhere; ratios near zero make percentages meaningless).
func betterDirection(unit string) int {
	switch unit {
	case "queries/sec", "x", "rows/sec", "steps/sec":
		return +1
	case "ms", "allocs/query", "s", "bytes":
		return -1
	}
	return 0
}

// CheckRegression compares a fresh benchmark result file against the most
// recent same-named entry in the history file and returns an error listing
// every gated metric that regressed by more than tol (e.g. 0.10 = 10%).
// Metrics absent from the baseline are skipped; an empty history passes (no
// baseline has been recorded yet).
func CheckRegression(historyPath, benchPath, benchName string, tol float64) error {
	entries, err := readBenchJSON(benchPath)
	if err != nil {
		return err
	}
	hist, err := readHistory(historyPath)
	if err != nil {
		return err
	}
	var base *HistoryEntry
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].Bench == benchName {
			base = &hist[i]
			break
		}
	}
	if base == nil {
		return nil
	}
	baseline := make(map[string]BenchEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseline[e.Name] = e
	}
	var regressions []string
	for _, e := range entries {
		dir := betterDirection(e.Unit)
		if dir == 0 {
			continue
		}
		b, ok := baseline[e.Name]
		if !ok || b.Value <= 0 {
			continue
		}
		var loss float64 // fraction of the baseline lost
		if dir > 0 {
			loss = (b.Value - e.Value) / b.Value
		} else {
			loss = (e.Value - b.Value) / b.Value
		}
		if loss > tol {
			regressions = append(regressions, fmt.Sprintf("%s: %.4g -> %.4g %s (%.1f%% worse, baseline commit %s)",
				e.Name, b.Value, e.Value, e.Unit, loss*100, base.Commit))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench: %d metric(s) regressed more than %.0f%% vs recorded baseline:\n  %s",
			len(regressions), tol*100, strings.Join(regressions, "\n  "))
	}
	return nil
}

// readBenchJSON loads a benchmark result file (array of BenchEntry).
func readBenchJSON(path string) ([]BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BenchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return entries, nil
}
