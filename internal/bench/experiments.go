package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/estimator"
	"repro/internal/made"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/table"
)

// Fig4 prints the distribution of true query selectivities on DMV and
// Conviva-A (Figure 4): a text CDF over the generated workload.
func Fig4(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintln(out, "Figure 4: distribution of query selectivity")
	for _, ds := range []struct {
		name string
		tbl  *table.Table
	}{
		{"DMV", datagen.DMV(cfg.DMVRows, cfg.Seed)},
		{"Conviva-A", datagen.ConvivaA(cfg.ConvivaRows, cfg.Seed)},
	} {
		w := mustWorkload(ds.tbl, query.DefaultGeneratorConfig(), cfg.Seed+100, cfg.NumQueries)
		sels := trueSels(w)
		fmt.Fprintf(out, "\n%s (%d queries):\n", ds.name, len(sels))
		for _, edge := range []float64{1e-5, 1e-4, 1e-3, 5e-3, 2e-2, 1e-1, 1} {
			var frac float64
			for _, s := range sels {
				if s <= edge {
					frac++
				}
			}
			frac /= float64(len(sels))
			fmt.Fprintf(out, "  sel <= %-7.0e: %5.1f%%\n", edge, 100*frac)
		}
		counts := map[metrics.SelectivityBucket]int{}
		for _, s := range sels {
			counts[metrics.Bucket(s)]++
		}
		fmt.Fprintf(out, "  bands: high=%d medium=%d low=%d\n",
			counts[metrics.High], counts[metrics.Medium], counts[metrics.Low])
	}
}

// Table3 runs the full estimator roster on the DMV analogue and prints the
// paper-style error table. It returns the suite so callers (Fig 6, Table 6)
// can reuse the trained model.
func Table3(out io.Writer, cfg Config) *Suite {
	cfg = cfg.withDefaults()
	s := NewDMVSuite(cfg, out)
	results := make([]*Result, 0, len(s.Estimators))
	for _, e := range s.Estimators {
		start := time.Now()
		results = append(results, RunWorkload(e, s.Workload))
		progress(out, cfg.Quiet, "table3: %s done in %v", e.Name(), time.Since(start).Round(time.Millisecond))
	}
	PrintErrorTable(out, "Table 3: estimation errors on DMV (q-error quantiles)", results, s.Workload)
	printLatencies(out, "Figure 6a: estimator latency on DMV (ms)", results)
	return s
}

// Table4 is Table3 for the Conviva-A analogue with the reduced roster.
func Table4(out io.Writer, cfg Config) *Suite {
	cfg = cfg.withDefaults()
	s := NewConvivaASuite(cfg, out)
	results := make([]*Result, 0, len(s.Estimators))
	for _, e := range s.Estimators {
		start := time.Now()
		results = append(results, RunWorkload(e, s.Workload))
		progress(out, cfg.Quiet, "table4: %s done in %v", e.Name(), time.Since(start).Round(time.Millisecond))
	}
	PrintErrorTable(out, "Table 4: estimation errors on Conviva-A (q-error quantiles)", results, s.Workload)
	printLatencies(out, "Figure 6b: estimator latency on Conviva-A (ms)", results)
	return s
}

// Table5 evaluates robustness to out-of-distribution queries (§6.3): literals
// drawn from the whole joint domain, so most queries match nothing.
func Table5(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	t := datagen.DMV(cfg.DMVRows, cfg.Seed)
	oodCfg := query.DefaultGeneratorConfig()
	oodCfg.OOD = true
	w := mustWorkload(t, oodCfg, cfg.Seed+400, cfg.NumQueries)
	var empty int
	for _, c := range w.TrueCard {
		if c == 0 {
			empty++
		}
	}
	fmt.Fprintf(out, "\nTable 5: OOD robustness on DMV (%d/%d queries are empty)\n",
		empty, len(w.Queries))

	naru := TrainNaru(t, DMVModelConfig(cfg.Seed), cfg.Epochs, cfg.Seed+200)
	trainW := mustWorkload(t, query.DefaultGeneratorConfig(), cfg.Seed+300, trainQueryCount(cfg))
	mscn := trainMSCN(t, trainW, estimator.MSCNConfig{Name: "MSCN-10K", SampleRows: 10000, Seed: cfg.Seed + 4})
	kdeSup := estimator.NewKDE(t, 2000, cfg.Seed+1)
	kdeSup.TuneBandwidths(trainW.Regions[:minInt(200, len(trainW.Regions))], trueSels(trainW)[:minInt(200, len(trainW.Regions))], 2)
	ests := []estimator.Interface{
		mscn,
		kdeSup,
		estimator.NewSample(t, 0.013, cfg.Seed+5),
		core.NewEstimator(naru, 2000, cfg.Seed+7),
	}
	var rows []NamedErrors
	for _, e := range ests {
		r := RunWorkload(e, w)
		rows = append(rows, NamedErrors{e.Name(), r.Errors(w)})
	}
	PrintQuantileTable(out, "errors on 100%-OOD workload", rows)
}

// Fig5 tracks entropy gap and worst-case q-error per training epoch (§6.4)
// for both datasets.
func Fig5(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintln(out, "\nFigure 5: training time vs quality")
	fig5One(out, cfg, "DMV", datagen.DMV(cfg.DMVRows, cfg.Seed), DMVModelConfig(cfg.Seed), 1000)
	fig5One(out, cfg, "Conviva-A", datagen.ConvivaA(cfg.ConvivaRows, cfg.Seed), ConvivaModelConfig(cfg.Seed), 2000)
}

func fig5One(out io.Writer, cfg Config, name string, t *table.Table, mc made.Config, samples int) {
	// The evaluation workload runs after *every* epoch, so keep it small.
	nq := maxInt(cfg.NumQueries/4, 20)
	w := mustWorkload(t, query.DefaultGeneratorConfig(), cfg.Seed+100, nq)
	dataH := core.DataEntropy(t)
	m := made.New(t.DomainSizes(), mc)
	fmt.Fprintf(out, "\n%s (H(P) = %.2f bits, %d rows, %d eval queries):\n",
		name, dataH, t.NumRows(), len(w.Queries))
	fmt.Fprintf(out, "%6s %14s %14s %12s\n", "epoch", "train-nll(bits)", "entropy-gap", "max-qerror")
	core.Train(m, t, core.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: 512, LR: 2e-3, Seed: cfg.Seed + 200,
		OnEpoch: func(epoch int, nll float64) bool {
			gap := core.CrossEntropy(m, t, 20000) - dataH
			est := core.NewEstimator(m, samples, cfg.Seed+7)
			r := RunWorkload(est, w)
			errs := r.Errors(w)
			fmt.Fprintf(out, "%6d %14.2f %14.2f %12s\n",
				epoch+1, nll/math.Ln2, gap, fmtErr(metrics.Quantile(errs, 1)))
			return true
		},
	})
}

// printLatencies renders latency quantiles per estimator (Figure 6).
func printLatencies(out io.Writer, title string, results []*Result) {
	fmt.Fprintf(out, "\n%s\n%-12s %10s %10s %10s\n", title, "Estimator", "p50", "p99", "max")
	for _, r := range results {
		p50, p99, mx := LatencySummary(r.Latencies)
		fmt.Fprintf(out, "%-12s %9.2fms %9.2fms %9.2fms\n", r.Estimator, p50, p99, mx)
	}
}

// Table6 compares query-region sizes with the cost of naive enumeration and
// the measured progressive-sampling latency at the 99th percentile.
func Table6(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintln(out, "\nTable 6: query region sizes vs enumeration vs progressive sampling (99th percentile)")
	for _, ds := range []struct {
		name    string
		tbl     *table.Table
		mc      made.Config
		samples int
	}{
		{"DMV", datagen.DMV(cfg.DMVRows, cfg.Seed), DMVModelConfig(cfg.Seed), 1000},
		{"Conviva-A", datagen.ConvivaA(cfg.ConvivaRows, cfg.Seed), ConvivaModelConfig(cfg.Seed), 2000},
	} {
		w := mustWorkload(ds.tbl, query.DefaultGeneratorConfig(), cfg.Seed+100, minInt(cfg.NumQueries, 100))
		sizes := make([]float64, len(w.Regions))
		for i, reg := range w.Regions {
			sizes[i] = reg.Size()
		}
		regionP99 := metrics.Quantile(sizes, 0.99)

		m := TrainNaru(ds.tbl, ds.mc, maxInt(cfg.Epochs/2, 2), cfg.Seed+200)
		est := core.NewEstimator(m, ds.samples, cfg.Seed+7)
		r := RunWorkload(est, w)
		_, latP99, _ := LatencySummary(r.Latencies)

		// Enumeration cost model: one model forward per point per column at
		// the measured per-point throughput of progressive sampling.
		perPointSec := (latP99 / 1000) / float64(ds.samples)
		enumHours := regionP99 * perPointSec / 3600

		fmt.Fprintf(out, "%-10s region=%8.2g points  enum(est.)=%10.3g hr  naru(%d samples)=%6.2f ms\n",
			ds.name, regionP99, enumHours, ds.samples, latP99)
	}
}

// Table7 sweeps the hidden width of the Conviva-A model and reports model
// size vs entropy gap after a fixed number of epochs (§6.6).
func Table7(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	t := datagen.ConvivaA(cfg.ConvivaRows, cfg.Seed)
	dataH := core.DataEntropy(t)
	fmt.Fprintf(out, "\nTable 7: model size vs entropy gap on Conviva-A (%d epochs, H(P)=%.2f bits)\n",
		cfg.Epochs, dataH)
	fmt.Fprintf(out, "%-22s %10s %14s\n", "Architecture", "Size(MB)", "EntropyGap")
	for _, width := range []int{32, 64, 128, 256} {
		mc := made.Config{
			HiddenSizes:    []int{width, width, width, width},
			EmbedThreshold: 64, EmbedDim: 64, Seed: cfg.Seed,
		}
		m := TrainNaru(t, mc, cfg.Epochs, cfg.Seed+200)
		gap := core.CrossEntropy(m, t, 20000) - dataH
		fmt.Fprintf(out, "%dx%dx%dx%d%*s %10.2f %11.2f bits\n",
			width, width, width, width, 22-len(fmt.Sprintf("%dx%dx%dx%d", width, width, width, width)), "",
			float64(m.SizeBytes())/1e6, gap)
	}
}

// Fig7 reproduces the oracle-noise sweep on Conviva-B projected to 15
// columns: accuracy of Naru-{50,250,1000} vs Indep and Sample(1%) as the
// model's entropy gap grows artificially.
func Fig7(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	full := datagen.ConvivaB(cfg.Seed)
	t := full.Project(15)
	w := fig78Workload(t, cfg, minInt(cfg.NumQueries, 40))
	oracle := core.NewOracle(t)
	indep := estimator.NewIndep(t)
	sample := estimator.NewSample(t, 0.01, cfg.Seed+5)

	fmt.Fprintln(out, "\nFigure 7: max q-error vs artificial entropy gap (Conviva-B, first 15 cols, oracle model)")
	fmt.Fprintf(out, "%8s %10s", "gap(bits)", "eps")
	for _, s := range []int{50, 250, 1000} {
		fmt.Fprintf(out, " %10s", fmt.Sprintf("Naru-%d", s))
	}
	fmt.Fprintf(out, " %10s %10s\n", "Indep", "Sample(1%)")
	for _, gap := range []float64{0, 0.5, 2, 5, 10, 20} {
		eps := oracle.CalibrateNoise(gap)
		var model core.Model = oracle
		if eps > 0 {
			model = core.NewNoisyOracle(oracle, eps)
		}
		fmt.Fprintf(out, "%8.1f %10.4f", gap, eps)
		for _, s := range []int{50, 250, 1000} {
			est := core.NewEstimator(model, s, cfg.Seed+int64(s))
			r := RunWorkload(est, w)
			fmt.Fprintf(out, " %10s", fmtErr(metrics.Quantile(r.Errors(w), 1)))
		}
		ri := RunWorkload(indep, w)
		rs := RunWorkload(sample, w)
		fmt.Fprintf(out, " %10s %10s\n",
			fmtErr(metrics.Quantile(ri.Errors(w), 1)), fmtErr(metrics.Quantile(rs.Errors(w), 1)))
	}
}

// Fig8 reproduces the column-count sweep: oracle-model accuracy as Conviva-B
// is widened from 5 to 100 columns, for Naru-{100,1000,10000}.
func Fig8(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	full := datagen.ConvivaB(cfg.Seed)
	fmt.Fprintln(out, "\nFigure 8: max q-error vs number of columns (Conviva-B, oracle model)")
	fmt.Fprintf(out, "%8s", "cols")
	for _, s := range []int{100, 1000, 10000} {
		fmt.Fprintf(out, " %11s", fmt.Sprintf("Naru-%d", s))
	}
	fmt.Fprintf(out, " %11s %11s\n", "Indep", "Sample(1%)")
	for _, nc := range []int{5, 15, 30, 50, 75, 100} {
		t := full.Project(nc)
		w := fig78Workload(t, cfg, minInt(cfg.NumQueries, 30))
		oracle := core.NewOracle(t)
		fmt.Fprintf(out, "%8d", nc)
		for _, s := range []int{100, 1000, 10000} {
			est := core.NewEstimator(oracle, s, cfg.Seed+int64(s))
			r := RunWorkload(est, w)
			fmt.Fprintf(out, " %11s", fmtErr(metrics.Quantile(r.Errors(w), 1)))
		}
		ri := RunWorkload(estimator.NewIndep(t), w)
		rs := RunWorkload(estimator.NewSample(t, 0.01, cfg.Seed+5), w)
		fmt.Fprintf(out, " %11s %11s\n",
			fmtErr(metrics.Quantile(ri.Errors(w), 1)), fmtErr(metrics.Quantile(rs.Errors(w), 1)))
	}
}

// fig78Workload draws the §6.7 microbenchmark workload: up to 12 filtered
// columns, literals from the data.
func fig78Workload(t *table.Table, cfg Config, n int) *query.Workload {
	gc := query.GeneratorConfig{MinFilters: 5, MaxFilters: 12, SmallDomainThreshold: 10}
	if t.NumCols() < gc.MinFilters {
		gc.MinFilters = t.NumCols()
	}
	return mustWorkload(t, gc, cfg.Seed+500, n)
}

// Table8 reproduces the data-shift experiment (§6.7.3): DMV is partitioned
// by valid_date into 5 ingests; a stale model (built on partition 1) is
// compared against a model fine-tuned after each ingest.
func Table8(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	t := datagen.DMV(cfg.DMVRows, cfg.Seed).SortByColumn(6) // valid_date
	nParts := 5
	partRows := t.NumRows() / nParts

	fmt.Fprintln(out, "\nTable 8: robustness to data shifts (DMV partitioned by valid_date)")
	fmt.Fprintf(out, "%-24s", "Partitions ingested")
	for p := 1; p <= nParts; p++ {
		fmt.Fprintf(out, " %8d", p)
	}
	fmt.Fprintln(out)

	mc := DMVModelConfig(cfg.Seed)
	first := t.SliceRows(0, partRows)
	stale := made.New(t.DomainSizes(), mc)
	core.Train(stale, first, core.TrainConfig{Epochs: cfg.Epochs, BatchSize: 512, LR: 2e-3, Seed: cfg.Seed + 200})
	refreshed := made.New(t.DomainSizes(), mc)
	core.Train(refreshed, first, core.TrainConfig{Epochs: cfg.Epochs, BatchSize: 512, LR: 2e-3, Seed: cfg.Seed + 200})

	// The query generator draws literals from tuples of the first partition
	// (as in the paper); true selectivities use all ingested data.
	nq := minInt(cfg.NumQueries, 200)
	queries := make([]query.Query, nq)
	gen := query.NewGenerator(first, query.DefaultGeneratorConfig(), cfg.Seed+600)
	for i := range queries {
		queries[i] = gen.Next()
	}

	type row struct{ max, p90 []float64 }
	staleRow, freshRow := row{}, row{}
	for p := 1; p <= nParts; p++ {
		hi := p * partRows
		if p == nParts {
			hi = t.NumRows()
		}
		ingested := t.SliceRows(0, hi)
		if p > 1 {
			// Fine-tune the refreshed model on a recent window of the data
			// (gradient updates on each new ingest, §6.7.3).
			core.Train(refreshed, ingested, core.TrainConfig{
				Epochs: maxInt(cfg.Epochs/2, 1), BatchSize: 512, LR: 1e-3, Seed: cfg.Seed + int64(700+p)})
		}
		w := labelQueries(queries, ingested)
		for _, mr := range []struct {
			m *made.Model
			r *row
		}{{stale, &staleRow}, {refreshed, &freshRow}} {
			est := core.NewEstimator(mr.m, 1000, cfg.Seed+7)
			res := RunWorkload(est, w)
			errs := res.Errors(w)
			mr.r.max = append(mr.r.max, metrics.Quantile(errs, 1))
			mr.r.p90 = append(mr.r.p90, metrics.Quantile(errs, 0.9))
		}
		progress(out, cfg.Quiet, "table8: partition %d/%d done", p, nParts)
	}
	printShiftRow(out, "Naru, refreshed: max", freshRow.max)
	printShiftRow(out, "  90%-tile", freshRow.p90)
	printShiftRow(out, "Naru, stale: max", staleRow.max)
	printShiftRow(out, "  90%-tile", staleRow.p90)
}

func printShiftRow(out io.Writer, label string, vals []float64) {
	fmt.Fprintf(out, "%-24s", label)
	for _, v := range vals {
		fmt.Fprintf(out, " %8s", fmtErr(v))
	}
	fmt.Fprintln(out)
}

// labelQueries compiles and executes fixed queries against a (grown) table.
func labelQueries(qs []query.Query, t *table.Table) *query.Workload {
	w := &query.Workload{
		Queries:  qs,
		Regions:  make([]*query.Region, len(qs)),
		TrueCard: make([]int64, len(qs)),
		NumRows:  int64(t.NumRows()),
	}
	for i, q := range qs {
		reg, err := query.Compile(q, t)
		if err != nil {
			panic(fmt.Sprintf("bench: labelQueries: %v", err))
		}
		w.Regions[i] = reg
		w.TrueCard[i] = query.Execute(reg, t)
	}
	return w
}
