package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/estimator"
	"repro/internal/metrics"
	"repro/internal/query"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{DMVRows: 8000, ConvivaRows: 6000, NumQueries: 20, Epochs: 1, Seed: 1, Quiet: true}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.DMVRows == 0 || c.ConvivaRows == 0 || c.NumQueries == 0 || c.Epochs == 0 || c.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestRunWorkloadAndErrors(t *testing.T) {
	tbl := datagen.DMV(5000, 1)
	w, err := query.GenerateWorkload(tbl, query.DefaultGeneratorConfig(), 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	e := estimator.NewIndep(tbl)
	r := RunWorkload(e, w)
	if len(r.Estimates) != 15 || len(r.Latencies) != 15 {
		t.Fatal("result sizes wrong")
	}
	errs := r.Errors(w)
	for _, qe := range errs {
		if qe < 1 {
			t.Fatalf("q-error %v below 1", qe)
		}
	}
	sums := r.BucketedSummaries(w)
	total := 0
	for _, s := range sums {
		total += s.Count
	}
	if total != 15 {
		t.Fatalf("bucketed counts sum to %d", total)
	}
}

func TestPrintErrorTableRenders(t *testing.T) {
	tbl := datagen.DMV(4000, 1)
	w, err := query.GenerateWorkload(tbl, query.DefaultGeneratorConfig(), 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := RunWorkload(estimator.NewIndep(tbl), w)
	var buf bytes.Buffer
	PrintErrorTable(&buf, "test table", []*Result{r}, w)
	out := buf.String()
	if !strings.Contains(out, "Indep") || !strings.Contains(out, "test table") {
		t.Fatalf("table missing content:\n%s", out)
	}
}

func TestPrintQuantileTable(t *testing.T) {
	var buf bytes.Buffer
	PrintQuantileTable(&buf, "q", []NamedErrors{{"X", []float64{1, 2, 3, 100}}})
	if !strings.Contains(buf.String(), "X") || !strings.Contains(buf.String(), "100") {
		t.Fatalf("quantile table:\n%s", buf.String())
	}
}

func TestLatencySummary(t *testing.T) {
	lats := []time.Duration{time.Millisecond, 2 * time.Millisecond, 10 * time.Millisecond}
	p50, p99, max := LatencySummary(lats)
	if p50 != 2 || p99 != 10 || max != 10 {
		t.Fatalf("latency summary: %v %v %v", p50, p99, max)
	}
}

func TestFmtErrAndHumanBytes(t *testing.T) {
	if fmtErr(1.234) != "1.23" {
		t.Fatalf("fmtErr small: %s", fmtErr(1.234))
	}
	if fmtErr(12345) != "12345" {
		t.Fatalf("fmtErr mid: %s", fmtErr(12345))
	}
	if !strings.Contains(fmtErr(2e6), "e+") {
		t.Fatalf("fmtErr huge: %s", fmtErr(2e6))
	}
	if fmtErr(metrics.Quantile(nil, 0.5)) != "-" {
		t.Fatal("fmtErr NaN should render -")
	}
	if humanBytes(512) != "512B" || humanBytes(2048) != "2.0KB" || !strings.HasSuffix(humanBytes(3<<20), "MB") {
		t.Fatal("humanBytes")
	}
}

func TestFig4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	Fig4(&buf, tinyConfig())
	out := buf.String()
	if !strings.Contains(out, "DMV") || !strings.Contains(out, "Conviva-A") {
		t.Fatalf("Fig4 output:\n%s", out)
	}
}

func TestTable8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.NumQueries = 10
	Table8(&buf, cfg)
	out := buf.String()
	if !strings.Contains(out, "refreshed") || !strings.Contains(out, "stale") {
		t.Fatalf("Table8 output:\n%s", out)
	}
}

func TestFig7Fig8ShareOracleWorkloadShape(t *testing.T) {
	tbl := datagen.ConvivaB(1).Project(8)
	w := fig78Workload(tbl, tinyConfig(), 10)
	if len(w.Queries) != 10 {
		t.Fatal("workload size")
	}
	for _, q := range w.Queries {
		if q.NumFilters() > 12 {
			t.Fatal("too many filters for §6.7 workload")
		}
	}
}

func TestLabelQueriesConsistentWithExecute(t *testing.T) {
	tbl := datagen.DMV(3000, 1)
	gen := query.NewGenerator(tbl, query.DefaultGeneratorConfig(), 5)
	qs := []query.Query{gen.Next(), gen.Next(), gen.Next()}
	w := labelQueries(qs, tbl)
	for i := range qs {
		reg, err := query.Compile(qs[i], tbl)
		if err != nil {
			t.Fatal(err)
		}
		if w.TrueCard[i] != query.Execute(reg, tbl) {
			t.Fatalf("label mismatch at %d", i)
		}
	}
}

func TestTrainQueryCountScales(t *testing.T) {
	cfg := tinyConfig()
	if trainQueryCount(cfg) < 200 {
		t.Fatal("training workload floor")
	}
	cfg.NumQueries = 1000
	if trainQueryCount(cfg) != 5000 {
		t.Fatalf("train count = %d", trainQueryCount(cfg))
	}
}
