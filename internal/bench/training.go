package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/made"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/table"
	"repro/internal/tensor"
)

// This file benchmarks the training fast path — batched decode losses, the
// FMA/packed backward kernels, and deterministic data-parallel gradient
// sharding — against the pre-fast-path sequential baseline. Three
// configurations train the DMV model from the same seed:
//
//	baseline : per-row scalar losses (TrainStepReference) with the legacy
//	           kernel configuration (tensor.SetAccel(false)), i.e. what a
//	           training step cost before this work;
//	batched  : the batched step on the accelerated kernels, Workers=1;
//	sharded  : the batched step under data-parallel gradient sharding.
//
// All three see identical batch schedules (same Seed), so their per-epoch
// NLLs are directly comparable: batched and sharded must match the baseline
// to float noise while moving many times more rows per second.

// referenceTrainer routes TrainStep through the retained pre-batching
// implementation so core.TrainRun drives the baseline unchanged.
type referenceTrainer struct{ *made.Model }

func (r referenceTrainer) TrainStep(codes []int32, n int, opt *nn.Adam) float64 {
	return r.Model.TrainStepReference(codes, n, opt)
}

// trainStats is one configuration's measured run.
type trainStats struct {
	history    []float64
	stepDurs   []time.Duration
	total      time.Duration
	rowsPerSec float64
}

// timedTrain runs core.TrainRun while timing every gradient step (the OnStep
// hook fires after each one, so successive hook times bracket a step
// including its overlapped batch gather).
func timedTrain(m core.Trainable, t *table.Table, tc core.TrainConfig) (trainStats, error) {
	var s trainStats
	last := time.Now()
	tc.OnStep = func(step int, loss float64) error {
		now := time.Now()
		s.stepDurs = append(s.stepDurs, now.Sub(last))
		last = now
		return nil
	}
	start := time.Now()
	hist, err := core.TrainRun(m, t, tc)
	if err != nil {
		return s, err
	}
	s.history = hist
	s.total = time.Since(start)
	rows := float64(len(s.stepDurs) * tc.BatchSize)
	if secs := s.total.Seconds(); secs > 0 {
		s.rowsPerSec = rows / secs
	}
	return s, nil
}

// stepQuantiles returns step-latency quantiles in milliseconds.
func stepQuantiles(durs []time.Duration) (p50, p99 float64) {
	ms := make([]float64, len(durs))
	for i, d := range durs {
		ms[i] = float64(d) / 1e6
	}
	sort.Float64s(ms)
	return metrics.Quantile(ms, 0.5), metrics.Quantile(ms, 0.99)
}

// Training measures the three training configurations on the synthetic DMV
// table and writes the github-action-benchmark JSON to BenchOut
// (BENCH_training.json by default).
func Training(out io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	if cfg.BenchOut == "" {
		cfg.BenchOut = "BENCH_training.json"
	}
	// The NLL trajectories only need a few epochs to compare; the baseline is
	// slow enough that one epoch measures its throughput honestly.
	epochs := minInt(cfg.Epochs, 3)
	shardW := maxInt(2, cfg.Workers)

	start := time.Now()
	t := datagen.DMV(cfg.DMVRows, cfg.Seed)
	progress(out, cfg.Quiet, "training: generated %d rows in %v", t.NumRows(), time.Since(start).Round(time.Millisecond))

	const batch = 512
	tc := core.TrainConfig{Epochs: epochs, BatchSize: batch, LR: 2e-3, Seed: cfg.Seed + 200, Obs: cfg.Obs}
	newModel := func() *made.Model { return made.New(t.DomainSizes(), DMVModelConfig(cfg.Seed)) }

	// Baseline: legacy kernels + per-row reference step, one epoch.
	baseTC := tc
	baseTC.Epochs = 1
	prevAccel := tensor.SetAccel(false)
	base, err := timedTrain(referenceTrainer{newModel()}, t, baseTC)
	tensor.SetAccel(prevAccel)
	if err != nil {
		fmt.Fprintf(out, "training: baseline run: %v\n", err)
		return
	}
	progress(out, cfg.Quiet, "training: baseline epoch in %v", base.total.Round(time.Millisecond))

	// Batched fast path, sequential.
	seqTC := tc
	seqTC.Workers = 1
	seq, err := timedTrain(newModel(), t, seqTC)
	if err != nil {
		fmt.Fprintf(out, "training: batched run: %v\n", err)
		return
	}
	progress(out, cfg.Quiet, "training: batched %d epochs in %v", epochs, seq.total.Round(time.Millisecond))

	// Batched fast path under data-parallel sharding.
	shTC := tc
	shTC.Workers = shardW
	sh, err := timedTrain(newModel(), t, shTC)
	if err != nil {
		fmt.Fprintf(out, "training: sharded run: %v\n", err)
		return
	}
	progress(out, cfg.Quiet, "training: sharded (W=%d) %d epochs in %v", shardW, epochs, sh.total.Round(time.Millisecond))

	seqP50, seqP99 := stepQuantiles(seq.stepDurs)
	shP50, shP99 := stepQuantiles(sh.stepDurs)

	// Epoch NLLs under the same batch schedule: the fast paths must track the
	// baseline's first epoch and each other at every epoch.
	var nllGap float64
	for i := range seq.history {
		if i < len(sh.history) {
			if rel := math.Abs(sh.history[i]-seq.history[i]) / math.Abs(seq.history[i]); rel > nllGap {
				nllGap = rel
			}
		}
	}
	baseGap := math.Abs(seq.history[0]-base.history[0]) / math.Abs(base.history[0])

	fmt.Fprintf(out, "\nTraining fast path (DMV %d rows, batch %d, %d epochs, shard workers=%d)\n",
		t.NumRows(), batch, epochs, shardW)
	fmt.Fprintf(out, "%-34s %12s %10s %10s %12s\n", "configuration", "rows/sec", "p50 ms", "p99 ms", "epoch-1 NLL")
	bp50, bp99 := stepQuantiles(base.stepDurs)
	fmt.Fprintf(out, "%-34s %12.0f %10.2f %10.2f %12.4f\n", "baseline (scalar, legacy kernels)", base.rowsPerSec, bp50, bp99, base.history[0])
	fmt.Fprintf(out, "%-34s %12.0f %10.2f %10.2f %12.4f\n", "batched (fast kernels, W=1)", seq.rowsPerSec, seqP50, seqP99, seq.history[0])
	fmt.Fprintf(out, "%-34s %12.0f %10.2f %10.2f %12.4f\n", fmt.Sprintf("sharded (fast kernels, W=%d)", shardW), sh.rowsPerSec, shP50, shP99, sh.history[0])
	fmt.Fprintf(out, "speedup vs baseline: batched %.2fx, sharded %.2fx\n",
		seq.rowsPerSec/base.rowsPerSec, sh.rowsPerSec/base.rowsPerSec)
	fmt.Fprintf(out, "epoch NLLs: batched %v\n", fmtNLLs(seq.history))
	fmt.Fprintf(out, "            sharded %v\n", fmtNLLs(sh.history))
	fmt.Fprintf(out, "NLL agreement: batched vs baseline epoch 1 rel %.3g; sharded vs batched max rel %.3g\n", baseGap, nllGap)

	entries := []BenchEntry{
		{Name: "dmv_train_rows_per_sec_baseline", Value: base.rowsPerSec, Unit: "rows/sec",
			Extra: "per-row scalar losses, legacy kernels (pre-fast-path)"},
		{Name: "dmv_train_rows_per_sec_batched", Value: seq.rowsPerSec, Unit: "rows/sec",
			Extra: "batched decode losses + FMA/packed kernels, Workers=1"},
		{Name: "dmv_train_rows_per_sec_sharded", Value: sh.rowsPerSec, Unit: "rows/sec",
			Extra: fmt.Sprintf("data-parallel gradient sharding, Workers=%d", shardW)},
		{Name: "dmv_train_speedup_vs_baseline", Value: seq.rowsPerSec / base.rowsPerSec, Unit: "x",
			Extra: fmt.Sprintf("batched over baseline; sharded %.2fx", sh.rowsPerSec/base.rowsPerSec)},
		{Name: "dmv_train_step_p50", Value: seqP50, Unit: "ms", Extra: "batched fast path, Workers=1"},
		{Name: "dmv_train_step_p99", Value: seqP99, Unit: "ms", Extra: "batched fast path, Workers=1"},
		{Name: "dmv_train_epoch1_nll_batched", Value: seq.history[0], Unit: "nats",
			Extra: fmt.Sprintf("baseline epoch-1 NLL %.6f (rel gap %.3g)", base.history[0], baseGap)},
		{Name: "dmv_train_nll_rel_gap_sharded", Value: nllGap, Unit: "fraction",
			Extra: "max over epochs of |sharded - batched| / |batched|"},
	}
	if err := writeBenchJSON(cfg.BenchOut, entries); err != nil {
		fmt.Fprintf(out, "training: writing %s: %v\n", cfg.BenchOut, err)
		return
	}
	fmt.Fprintf(out, "wrote %s\n", cfg.BenchOut)
}

func fmtNLLs(h []float64) string {
	s := "["
	for i, v := range h {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4f", v)
	}
	return s + "]"
}
