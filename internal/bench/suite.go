// Package bench is the experiment harness: it assembles datasets, trains the
// learned estimators, runs labeled workloads through every estimator, and
// prints result tables shaped like the paper's Tables 3–8 and Figures 4–8.
//
// Every experiment takes a Config whose zero value is replaced by scaled-down
// defaults that run on CPUs in minutes; the cmd/narubench flags raise them
// toward paper scale.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/estimator"
	"repro/internal/made"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// Config controls dataset sizes and workload scale for all experiments.
type Config struct {
	DMVRows     int // synthetic DMV row count (paper: 11.5M; default 60K)
	ConvivaRows int // synthetic Conviva-A row count (paper: 4.1M; default 50K)
	NumQueries  int // queries per workload (paper: 2000; default 160)
	Epochs      int // Naru training epochs (default 6)
	Seed        int64
	Quiet       bool   // suppress progress logging
	Workers     int    // concurrent query workers for batch serving (default NumCPU)
	BenchOut    string // output path for machine-readable benchmark JSON

	// Obs, when non-nil, collects serving telemetry from the benchmark's
	// batch run; Inference folds the observed latency histogram into the
	// BenchOut JSON so CI tracks the same quantiles an operator would scrape.
	Obs *obs.Registry
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.DMVRows <= 0 {
		c.DMVRows = 60_000
	}
	if c.ConvivaRows <= 0 {
		c.ConvivaRows = 50_000
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 160
	}
	if c.Epochs <= 0 {
		c.Epochs = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	// BenchOut has no global default: each benchmark entry point fills in its
	// own file name (BENCH_inference.json, BENCH_training.json) when empty.
	return c
}

// Suite bundles a dataset with its ground-truth workload and the estimators
// under test, mirroring the paper's per-dataset experimental setup (§6.1).
type Suite struct {
	Name       string
	Table      *table.Table
	Workload   *query.Workload
	Estimators []estimator.Interface
	Naru       *made.Model // the trained model backing the Naru estimators
}

// progress prints timing breadcrumbs unless quiet.
func progress(w io.Writer, quiet bool, format string, args ...any) {
	if quiet || w == nil {
		return
	}
	fmt.Fprintf(w, "# "+format+"\n", args...)
}

// DMVModelConfig is the MADE architecture used for the synthetic DMV table:
// a scaled-down cousin of the paper's 5-layer masked MLP that trains in CPU
// minutes while keeping the same structure.
func DMVModelConfig(seed int64) made.Config {
	return made.Config{HiddenSizes: []int{256, 128, 256}, EmbedThreshold: 64, EmbedDim: 64, Seed: seed}
}

// ConvivaModelConfig mirrors the paper's Conviva-A architecture: a 4×128
// masked MLP with 64-dim embedding reuse.
func ConvivaModelConfig(seed int64) made.Config {
	return made.Config{HiddenSizes: []int{128, 128, 128, 128}, EmbedThreshold: 64, EmbedDim: 64, Seed: seed}
}

// TrainNaru trains a MADE model on a table with the harness defaults.
func TrainNaru(t *table.Table, mc made.Config, epochs int, seed int64) *made.Model {
	m := made.New(t.DomainSizes(), mc)
	core.Train(m, t, core.TrainConfig{Epochs: epochs, BatchSize: 512, LR: 2e-3, Seed: seed})
	return m
}

// NewDMVSuite builds the synthetic DMV dataset, its 2000-query-style
// workload, and the full Table 3 estimator roster. The storage budget is
// ~1.3% of the table (Table 1), applied to Hist, Sample, and KDE.
func NewDMVSuite(cfg Config, log io.Writer) *Suite {
	cfg = cfg.withDefaults()
	start := time.Now()
	t := datagen.DMV(cfg.DMVRows, cfg.Seed)
	progress(log, cfg.Quiet, "dmv: generated %d rows in %v", t.NumRows(), time.Since(start).Round(time.Millisecond))

	w := mustWorkload(t, query.DefaultGeneratorConfig(), cfg.Seed+100, cfg.NumQueries)
	progress(log, cfg.Quiet, "dmv: %d queries labeled", len(w.Queries))

	budget := t.SizeBytes() * 13 / 1000 // 1.3%
	sampleFrac := 0.013
	kdePoints := int(budget / int64(t.NumCols()*4))

	s := &Suite{Name: "DMV", Table: t, Workload: w}

	trainStart := time.Now()
	s.Naru = TrainNaru(t, DMVModelConfig(cfg.Seed), cfg.Epochs, cfg.Seed+200)
	progress(log, cfg.Quiet, "dmv: Naru trained (%d epochs, %.1fMB) in %v",
		cfg.Epochs, float64(s.Naru.SizeBytes())/1e6, time.Since(trainStart).Round(time.Millisecond))

	// Supervised baselines need a training workload drawn from the same
	// distribution as the test queries (§6.1.2).
	trainW := mustWorkload(t, query.DefaultGeneratorConfig(), cfg.Seed+300, trainQueryCount(cfg))
	progress(log, cfg.Quiet, "dmv: %d training queries for supervised baselines", len(trainW.Queries))

	kde := estimator.NewKDE(t, maxInt(kdePoints, 100), cfg.Seed+1)
	kdeSup := estimator.NewKDE(t, maxInt(kdePoints, 100), cfg.Seed+1)
	kdeSup.TuneBandwidths(trainW.Regions[:minInt(200, len(trainW.Regions))], trueSels(trainW)[:minInt(200, len(trainW.Regions))], 2)

	mscnBase := trainMSCN(t, trainW, estimator.MSCNConfig{Name: "MSCN-base", SampleRows: 1000, Seed: cfg.Seed + 2})
	mscn0 := trainMSCN(t, trainW, estimator.MSCNConfig{Name: "MSCN-0", SampleRows: 0, Seed: cfg.Seed + 3})
	mscn10k := trainMSCN(t, trainW, estimator.MSCNConfig{Name: "MSCN-10K", SampleRows: 10000, Seed: cfg.Seed + 4})
	progress(log, cfg.Quiet, "dmv: supervised baselines trained")

	s.Estimators = []estimator.Interface{
		estimator.NewHist(t, budget),
		estimator.NewIndep(t),
		estimator.NewPostgres(t, 100, 10000),
		estimator.NewDBMS1(t, 100, 200),
		estimator.NewSample(t, sampleFrac, cfg.Seed+5),
		kde,
		kdeSup,
		mscnBase,
		mscn0,
		mscn10k,
		core.NewEstimator(s.Naru, 1000, cfg.Seed+6),
		core.NewEstimator(s.Naru, 2000, cfg.Seed+7),
	}
	progress(log, cfg.Quiet, "dmv: suite ready in %v", time.Since(start).Round(time.Millisecond))
	return s
}

// NewConvivaASuite builds the Conviva-A analogue with the Table 4 roster
// (the "promising baselines" only) and its 0.7% budget.
func NewConvivaASuite(cfg Config, log io.Writer) *Suite {
	cfg = cfg.withDefaults()
	start := time.Now()
	t := datagen.ConvivaA(cfg.ConvivaRows, cfg.Seed)
	progress(log, cfg.Quiet, "conviva-a: generated %d rows in %v", t.NumRows(), time.Since(start).Round(time.Millisecond))

	w := mustWorkload(t, query.DefaultGeneratorConfig(), cfg.Seed+100, cfg.NumQueries)
	progress(log, cfg.Quiet, "conviva-a: %d queries labeled", len(w.Queries))

	budget := t.SizeBytes() * 7 / 1000 // 0.7%
	sampleFrac := 0.007
	kdePoints := int(budget / int64(t.NumCols()*4))

	s := &Suite{Name: "Conviva-A", Table: t, Workload: w}
	trainStart := time.Now()
	s.Naru = TrainNaru(t, ConvivaModelConfig(cfg.Seed), cfg.Epochs, cfg.Seed+200)
	progress(log, cfg.Quiet, "conviva-a: Naru trained (%.1fMB) in %v",
		float64(s.Naru.SizeBytes())/1e6, time.Since(trainStart).Round(time.Millisecond))

	trainW := mustWorkload(t, query.DefaultGeneratorConfig(), cfg.Seed+300, trainQueryCount(cfg))
	kde := estimator.NewKDE(t, maxInt(kdePoints, 100), cfg.Seed+1)
	kdeSup := estimator.NewKDE(t, maxInt(kdePoints, 100), cfg.Seed+1)
	kdeSup.TuneBandwidths(trainW.Regions[:minInt(200, len(trainW.Regions))], trueSels(trainW)[:minInt(200, len(trainW.Regions))], 2)
	mscnBase := trainMSCN(t, trainW, estimator.MSCNConfig{Name: "MSCN-base", SampleRows: 1000, Seed: cfg.Seed + 2})

	s.Estimators = []estimator.Interface{
		estimator.NewDBMS1(t, 100, 200),
		estimator.NewSample(t, sampleFrac, cfg.Seed+5),
		kde,
		kdeSup,
		mscnBase,
		core.NewEstimator(s.Naru, 1000, cfg.Seed+6),
		core.NewEstimator(s.Naru, 2000, cfg.Seed+7),
		core.NewEstimator(s.Naru, 4000, cfg.Seed+8),
	}
	progress(log, cfg.Quiet, "conviva-a: suite ready in %v", time.Since(start).Round(time.Millisecond))
	return s
}

func trainMSCN(t *table.Table, w *query.Workload, cfg estimator.MSCNConfig) *estimator.MSCN {
	m := estimator.NewMSCN(t, cfg)
	m.TrainOn(w.Regions, trueSels(w), 30, 1e-3, cfg.Seed+50)
	return m
}

// trainQueryCount scales the supervised training workload with the test
// workload (paper: 100K training queries for 2K test queries, a 50× ratio;
// the harness uses 5× to keep label execution tractable, which if anything
// favors Naru's unsupervised training less).
func trainQueryCount(cfg Config) int {
	n := cfg.NumQueries * 5
	if n < 200 {
		n = 200
	}
	return n
}

func trueSels(w *query.Workload) []float64 {
	out := make([]float64, len(w.Queries))
	for i := range out {
		out[i] = w.TrueSelectivity(i)
	}
	return out
}

func mustWorkload(t *table.Table, gc query.GeneratorConfig, seed int64, n int) *query.Workload {
	w, err := query.GenerateWorkload(t, gc, seed, n)
	if err != nil {
		panic(fmt.Sprintf("bench: workload generation: %v", err))
	}
	return w
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
