package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site-based fault injection: production code declares named fault points
// (`var siteX = faultinject.Site("pkg.thing.op")`) and consults them with
// Point / WrapWriter at the exact instruction where a crash, disk fault, or
// bug would bite. The whole machinery sits behind one global atomic flag:
// until something is Armed, every Point call is a single atomic load and a
// predicted branch — no map lookup, no lock, no allocation — so the
// injection sites can stay in the hot serving and persistence paths
// permanently, the way assertions do.
//
// Schedules are deterministic: a fault fires on an exact window of hits
// ([After, After+Count) in per-site hit order), optionally thinned by a
// seeded coin (Prob, Seed), so a chaos run reproduces bit-identically from
// its spec string. The chaos harness arms specs from the NARU_FAULTS
// environment variable via ArmString; tests use Enable/Reset directly.

// ExitCode is the process exit status of ModeExit faults, distinct from the
// CLI's 1 (runtime error) and 2 (usage) so the chaos harness can tell an
// injected kill from an ordinary failure.
const ExitCode = 3

// Mode selects what a triggered fault does at its site.
type Mode int

const (
	// ModeError makes Point return ErrInjected (and WrapWriter fail), the
	// shape of an I/O error or a failed syscall.
	ModeError Mode = iota
	// ModeDelay makes Point sleep Spec.Delay, the shape of a stalled disk or
	// a scheduling hiccup.
	ModeDelay
	// ModePanic makes Point panic, the shape of a bug in the model or
	// sampler. Serving sites sit inside recover scopes; persistence sites do
	// not, so a panic there is a crash.
	ModePanic
	// ModeExit terminates the process with ExitCode immediately — no
	// deferred functions run, like a kill -9 at the site. Only reachable
	// through an armed spec (normally NARU_FAULTS in the chaos harness).
	ModeExit
	// ModePartial makes WrapWriter return a short-writing Writer with
	// Spec.Limit bytes of budget, the shape of a full disk or a process
	// killed mid-write. Point ignores it (partial writes need a writer).
	ModePartial
)

// String implements fmt.Stringer; the names double as the ArmString grammar.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeDelay:
		return "delay"
	case ModePanic:
		return "panic"
	case ModeExit:
		return "exit"
	case ModePartial:
		return "partial"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Spec schedules one fault at one site. The zero value is "error on the
// first hit, once".
type Spec struct {
	Mode Mode
	// After is the 1-based hit index at which the fault starts firing
	// (default 1: the first hit).
	After int
	// Count is how many hits fire once the window opens (default 1;
	// negative = every hit from After on).
	Count int
	// Delay is the ModeDelay sleep.
	Delay time.Duration
	// Limit is the ModePartial byte budget before the wrapped writer fails.
	Limit int
	// Prob, when in (0, 1), thins the firing window with a coin drawn from a
	// rand.Rand seeded with Seed — a deterministic "flaky" schedule.
	Prob float64
	// Seed seeds the Prob coin stream.
	Seed int64
}

// armedFault is one site's live schedule plus its hit bookkeeping.
type armedFault struct {
	spec  Spec
	hits  int
	fired int
	rng   *rand.Rand
}

var (
	armed    atomic.Bool
	siteMu   sync.Mutex
	sites    = map[string]bool{}
	faultMu  sync.Mutex
	faults   = map[string]*armedFault{}
	hitCount = map[string]int{}
	// exit is swapped out by tests of ModeExit.
	exit = func(site string) {
		fmt.Fprintf(os.Stderr, "faultinject: exiting at site %s\n", site)
		os.Exit(ExitCode)
	}
)

// Site registers a fault point name and returns it, so call sites read as
// `faultinject.Point(siteX)` with siteX declared once per package:
//
//	var siteManifestWrite = faultinject.Site("lifecycle.manifest.write")
//
// Registration is how the chaos harness enumerates the injection matrix
// (`naru faults`); it has no effect on behavior until a spec is armed.
func Site(name string) string {
	siteMu.Lock()
	sites[name] = true
	siteMu.Unlock()
	return name
}

// Sites returns every registered fault point, sorted.
func Sites() []string {
	siteMu.Lock()
	defer siteMu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Enable arms a spec at a site (registering the site if needed) and turns
// the global injection flag on.
func Enable(site string, s Spec) {
	Site(site)
	if s.After <= 0 {
		s.After = 1
	}
	if s.Count == 0 {
		s.Count = 1
	}
	af := &armedFault{spec: s}
	if s.Prob > 0 && s.Prob < 1 {
		af.rng = rand.New(rand.NewSource(s.Seed))
	}
	faultMu.Lock()
	faults[site] = af
	faultMu.Unlock()
	armed.Store(true)
}

// Disable removes the spec at a site; the global flag stays on while any
// other spec is armed.
func Disable(site string) {
	faultMu.Lock()
	delete(faults, site)
	n := len(faults)
	faultMu.Unlock()
	if n == 0 {
		armed.Store(false)
	}
}

// Reset disarms everything and zeroes the hit counters.
func Reset() {
	faultMu.Lock()
	faults = map[string]*armedFault{}
	hitCount = map[string]int{}
	faultMu.Unlock()
	armed.Store(false)
}

// Hits reports how many times a site was reached while injection was armed
// (faulted or not) — the way tests assert a chaos schedule actually
// exercised its target.
func Hits(site string) int {
	faultMu.Lock()
	defer faultMu.Unlock()
	return hitCount[site]
}

// strike records a hit and returns the spec if this hit fires.
func strike(site string) *Spec {
	faultMu.Lock()
	defer faultMu.Unlock()
	hitCount[site]++
	af := faults[site]
	if af == nil {
		return nil
	}
	af.hits++
	if af.hits < af.spec.After {
		return nil
	}
	if af.spec.Count > 0 && af.fired >= af.spec.Count {
		return nil
	}
	if af.rng != nil && af.rng.Float64() >= af.spec.Prob {
		return nil
	}
	af.fired++
	return &af.spec
}

// Point consults the fault schedule at a site: nil when nothing fires, an
// ErrInjected-wrapping error for ModeError; ModeDelay sleeps, ModePanic
// panics, ModeExit terminates the process. Disarmed cost is one atomic load.
func Point(site string) error {
	if !armed.Load() {
		return nil
	}
	sp := strike(site)
	if sp == nil {
		return nil
	}
	switch sp.Mode {
	case ModeError:
		return fmt.Errorf("%w at %s", ErrInjected, site)
	case ModeDelay:
		time.Sleep(sp.Delay)
	case ModePanic:
		panic(fmt.Sprintf("faultinject: scheduled panic at site %s", site))
	case ModeExit:
		exit(site)
	}
	return nil
}

// WrapWriter is Point for write paths: in addition to the Point modes it
// honors ModePartial by wrapping w in a short-writing Writer with the spec's
// byte budget, so the caller's very next Write sees a torn write.
func WrapWriter(site string, w io.Writer) (io.Writer, error) {
	if !armed.Load() {
		return w, nil
	}
	sp := strike(site)
	if sp == nil {
		return w, nil
	}
	switch sp.Mode {
	case ModeError:
		return nil, fmt.Errorf("%w at %s", ErrInjected, site)
	case ModeDelay:
		time.Sleep(sp.Delay)
	case ModePanic:
		panic(fmt.Sprintf("faultinject: scheduled panic at site %s", site))
	case ModeExit:
		exit(site)
	case ModePartial:
		limit := sp.Limit
		if limit <= 0 {
			limit = 1
		}
		return &Writer{W: w, Limit: limit}, nil
	}
	return w, nil
}

// ArmString parses and arms a comma-separated fault schedule, the NARU_FAULTS
// grammar:
//
//	site=mode[:arg][@after[xcount]]
//
// where mode is error|delay|panic|exit|partial, arg is the delay duration
// (delay:50ms) or the partial-write byte budget (partial:16), after is the
// 1-based hit index the fault starts firing at (default 1), and count is how
// many hits fire (default 1, "*" = unbounded). Examples:
//
//	lifecycle.manifest.write=exit@1
//	core.serve.query=panic@1x10,lifecycle.append.flush=error@2
func ArmString(s string) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rest, ok := strings.Cut(part, "=")
		if !ok || site == "" {
			return fmt.Errorf("faultinject: bad fault %q (want site=mode[:arg][@after[xcount]])", part)
		}
		spec, err := parseSpec(rest)
		if err != nil {
			return fmt.Errorf("faultinject: %s: %w", site, err)
		}
		Enable(site, spec)
	}
	return nil
}

// parseSpec parses the mode[:arg][@after[xcount]] portion of ArmString.
func parseSpec(s string) (Spec, error) {
	var sp Spec
	modeArg := s
	if head, window, ok := strings.Cut(s, "@"); ok {
		modeArg = head
		after, count, hasCount := strings.Cut(window, "x")
		n, err := strconv.Atoi(after)
		if err != nil || n < 1 {
			return sp, fmt.Errorf("bad hit index %q", after)
		}
		sp.After = n
		if hasCount {
			if count == "*" {
				sp.Count = -1
			} else {
				c, err := strconv.Atoi(count)
				if err != nil || c < 1 {
					return sp, fmt.Errorf("bad count %q", count)
				}
				sp.Count = c
			}
		}
	}
	mode, arg, hasArg := strings.Cut(modeArg, ":")
	switch mode {
	case "error":
		sp.Mode = ModeError
	case "panic":
		sp.Mode = ModePanic
	case "exit":
		sp.Mode = ModeExit
	case "delay":
		sp.Mode = ModeDelay
		if !hasArg {
			return sp, fmt.Errorf("delay needs a duration (delay:50ms)")
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return sp, fmt.Errorf("bad delay %q: %v", arg, err)
		}
		sp.Delay = d
	case "partial":
		sp.Mode = ModePartial
		if !hasArg {
			return sp, fmt.Errorf("partial needs a byte budget (partial:16)")
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return sp, fmt.Errorf("bad byte budget %q", arg)
		}
		sp.Limit = n
	default:
		return sp, fmt.Errorf("unknown mode %q", mode)
	}
	if (sp.Mode != ModeDelay && sp.Delay != 0) || (sp.Mode != ModePartial && sp.Limit != 0) {
		return sp, fmt.Errorf("argument does not match mode %s", sp.Mode)
	}
	return sp, nil
}
