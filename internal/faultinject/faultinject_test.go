package faultinject

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

func TestWriterShortWrite(t *testing.T) {
	var sink bytes.Buffer
	w := &Writer{W: &sink, Limit: 5}
	n, err := w.Write([]byte("abcdefgh"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("n=%d err=%v, want 5, ErrInjected", n, err)
	}
	if sink.String() != "abcde" {
		t.Fatalf("sink = %q", sink.String())
	}
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-limit write: n=%d err=%v", n, err)
	}
}

func TestWriterExactBudgetPasses(t *testing.T) {
	var sink bytes.Buffer
	w := &Writer{W: &sink, Limit: 3}
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestBitFlipReader(t *testing.T) {
	src := []byte{0x00, 0x00, 0x00, 0x00}
	r := &BitFlipReader{R: bytes.NewReader(src), Offset: 2, Bit: 3}
	got, err := io.ReadAll(iotest(r, 1)) // force 1-byte reads across the flip
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x00, 0x00, 0x08, 0x00}
	if !bytes.Equal(got, want) {
		t.Fatalf("got % x, want % x", got, want)
	}
}

// iotest caps each Read at n bytes so stream-offset bookkeeping is exercised.
func iotest(r io.Reader, n int) io.Reader { return &capped{r, n} }

type capped struct {
	r io.Reader
	n int
}

func (c *capped) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

func TestFlipBitCopies(t *testing.T) {
	orig := []byte{0xFF}
	flipped := FlipBit(orig, 0, 0)
	if orig[0] != 0xFF || flipped[0] != 0xFE {
		t.Fatalf("orig=%x flipped=%x", orig, flipped)
	}
	if out := FlipBit(orig, 99, 0); out[0] != 0xFF {
		t.Fatalf("out-of-range flip changed data: %x", out)
	}
}

func TestCrashAfter(t *testing.T) {
	hook := CrashAfter(3)
	for i := 0; i < 3; i++ {
		if err := hook(i, 0); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if err := hook(3, 0); !errors.Is(err, ErrCrash) {
		t.Fatalf("call 3: %v, want ErrCrash", err)
	}
}

func TestPanicOn(t *testing.T) {
	hook := PanicOn(2, 4)
	hook(0)
	hook(3)
	for _, i := range []int{2, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic on query %d", i)
				}
			}()
			hook(i)
		}()
	}
}

func TestCancelAtFiresOnce(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	hook := CancelAt(5, func() { mu.Lock(); calls++; mu.Unlock() })
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); hook(i) }(i)
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("cancel fired %d times, want 1", calls)
	}
	if calls = 0; calls != 0 {
		t.Fatal("unreachable")
	}
	hook(7)
	mu.Lock()
	defer mu.Unlock()
	if calls != 0 {
		t.Fatalf("cancel re-fired after first trigger")
	}
}
