package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPointDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Point(Site("test.disarmed")); err != nil {
		t.Fatalf("disarmed Point: %v", err)
	}
}

func TestPointErrorWindow(t *testing.T) {
	Reset()
	defer Reset()
	site := Site("test.window")
	Enable(site, Spec{Mode: ModeError, After: 2, Count: 2})
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, Point(site) != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: faulted=%v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if Hits(site) != 5 {
		t.Fatalf("Hits = %d, want 5", Hits(site))
	}
}

func TestPointUnboundedCount(t *testing.T) {
	Reset()
	defer Reset()
	site := Site("test.unbounded")
	Enable(site, Spec{Mode: ModeError, Count: -1})
	for i := 0; i < 10; i++ {
		if err := Point(site); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: %v, want ErrInjected", i+1, err)
		}
	}
}

func TestPointPanicAndDelay(t *testing.T) {
	Reset()
	defer Reset()
	site := Site("test.panic")
	Enable(site, Spec{Mode: ModePanic})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ModePanic did not panic")
			}
		}()
		_ = Point(site)
	}()
	// Second hit is past the window: no panic.
	if err := Point(site); err != nil {
		t.Fatalf("post-window Point: %v", err)
	}

	dsite := Site("test.delay")
	Enable(dsite, Spec{Mode: ModeDelay, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Point(dsite); err != nil {
		t.Fatalf("ModeDelay returned error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("ModeDelay slept %v, want >= 10ms", d)
	}
}

func TestPointExitUsesHook(t *testing.T) {
	Reset()
	defer Reset()
	old := exit
	defer func() { exit = old }()
	var exited string
	exit = func(site string) { exited = site }
	site := Site("test.exit")
	Enable(site, Spec{Mode: ModeExit})
	_ = Point(site)
	if exited != site {
		t.Fatalf("exit hook saw %q, want %q", exited, site)
	}
}

func TestWrapWriterPartial(t *testing.T) {
	Reset()
	defer Reset()
	site := Site("test.partial")
	Enable(site, Spec{Mode: ModePartial, Limit: 4})
	var buf bytes.Buffer
	w, err := WrapWriter(site, &buf)
	if err != nil {
		t.Fatalf("WrapWriter: %v", err)
	}
	n, err := w.Write([]byte("hello world"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write err = %v, want ErrInjected", err)
	}
	if n != 4 || buf.String() != "hell" {
		t.Fatalf("partial write wrote %d bytes %q, want 4 %q", n, buf.String(), "hell")
	}
	// Past the window: pass-through.
	w2, err := WrapWriter(site, &buf)
	if err != nil {
		t.Fatalf("post-window WrapWriter: %v", err)
	}
	if _, ok := w2.(*bytes.Buffer); !ok {
		t.Fatalf("post-window WrapWriter returned %T, want pass-through", w2)
	}
}

func TestProbSeedDeterministic(t *testing.T) {
	run := func() []bool {
		Reset()
		site := Site("test.prob")
		Enable(site, Spec{Mode: ModeError, Count: -1, Prob: 0.5, Seed: 42})
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, Point(site) != nil)
		}
		return out
	}
	a, b := run(), run()
	Reset()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedule diverged at hit %d", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times; coin not thinning", fired, len(a))
	}
}

func TestDisableRearmsFastPath(t *testing.T) {
	Reset()
	defer Reset()
	a, b := Site("test.disable.a"), Site("test.disable.b")
	Enable(a, Spec{Mode: ModeError, Count: -1})
	Enable(b, Spec{Mode: ModeError, Count: -1})
	Disable(a)
	if err := Point(a); err != nil {
		t.Fatalf("disabled site still faults: %v", err)
	}
	if err := Point(b); err == nil {
		t.Fatal("sibling site disarmed by Disable")
	}
	Disable(b)
	if armed.Load() {
		t.Fatal("global flag still armed after last Disable")
	}
}

func TestSitesSortedAndRegistered(t *testing.T) {
	Site("test.zz")
	Site("test.aa")
	all := Sites()
	ia, iz := -1, -1
	for i, s := range all {
		if s == "test.aa" {
			ia = i
		}
		if s == "test.zz" {
			iz = i
		}
	}
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("Sites() = %v: want test.aa before test.zz", all)
	}
}

func TestArmString(t *testing.T) {
	Reset()
	defer Reset()
	err := ArmString("test.arm.a=error@2x3, test.arm.b=delay:5ms, test.arm.c=partial:16@1x*, test.arm.d=panic")
	if err != nil {
		t.Fatalf("ArmString: %v", err)
	}
	faultMu.Lock()
	a, b, c, d := faults["test.arm.a"], faults["test.arm.b"], faults["test.arm.c"], faults["test.arm.d"]
	faultMu.Unlock()
	if a == nil || a.spec.Mode != ModeError || a.spec.After != 2 || a.spec.Count != 3 {
		t.Fatalf("a spec = %+v", a)
	}
	if b == nil || b.spec.Mode != ModeDelay || b.spec.Delay != 5*time.Millisecond {
		t.Fatalf("b spec = %+v", b)
	}
	if c == nil || c.spec.Mode != ModePartial || c.spec.Limit != 16 || c.spec.Count != -1 {
		t.Fatalf("c spec = %+v", c)
	}
	if d == nil || d.spec.Mode != ModePanic || d.spec.After != 1 || d.spec.Count != 1 {
		t.Fatalf("d spec = %+v", d)
	}
}

func TestArmStringRejectsGarbage(t *testing.T) {
	defer Reset()
	for _, bad := range []string{
		"nosite",
		"=error",
		"s=flood",
		"s=delay",
		"s=delay:xyz",
		"s=partial",
		"s=partial:-3",
		"s=error@0",
		"s=error@1x0",
		"s=error@1xq",
	} {
		Reset()
		if err := ArmString(bad); err == nil {
			t.Fatalf("ArmString(%q) accepted", bad)
		}
	}
	Reset()
	if err := ArmString(""); err != nil {
		t.Fatalf("ArmString(\"\") = %v, want nil", err)
	}
}

func TestPointConcurrent(t *testing.T) {
	Reset()
	defer Reset()
	site := Site("test.race")
	Enable(site, Spec{Mode: ModeError, After: 50, Count: 10})
	var wg sync.WaitGroup
	var mu sync.Mutex
	faulted := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if Point(site) != nil {
					mu.Lock()
					faulted++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if faulted != 10 {
		t.Fatalf("faulted %d times across goroutines, want exactly 10", faulted)
	}
	if Hits(site) != 200 {
		t.Fatalf("Hits = %d, want 200", Hits(site))
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeError: "error", ModeDelay: "delay", ModePanic: "panic",
		ModeExit: "exit", ModePartial: "partial", Mode(99): "Mode(99)",
	} {
		if got := m.String(); got != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
	if !strings.Contains(ModeError.String(), "error") {
		t.Fatal("unreachable")
	}
}
