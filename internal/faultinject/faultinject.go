// Package faultinject supplies deterministic failure machinery in two
// layers. The primitives in this file — writers that fail or short-write
// after a byte budget, readers that flip bits or truncate, training hooks
// that "crash" after N steps, serving hooks that panic on or cancel at
// chosen query indices — are imported by the resilience test suites and
// plugged into plain hook points (TrainConfig.OnStep,
// ServeOptions.BeforeQuery). Everything is deterministic and safe under the
// race detector, so the same disruption schedule reproduces bit-identically
// across runs.
//
// The site registry in site.go is the second layer: production code declares
// named fault points (faultinject.Site / faultinject.Point) at the exact
// instructions where a crash or disk fault would bite — manifest writes,
// checkpoint flushes, the fused sampling walk — and the chaos harness arms
// schedules against them by name (NARU_FAULTS). Disarmed, a fault point
// costs one atomic load.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// ErrInjected is returned by the failing writers and readers.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrCrash is returned by CrashAfter hooks to simulate an abrupt process
// death during training.
var ErrCrash = errors.New("faultinject: simulated crash")

// Writer passes bytes through to W until Limit bytes have been written, then
// fails every subsequent call. A write that straddles the limit is a short
// write: the prefix reaches W and the call returns ErrInjected, the way a
// full disk or a killed process truncates a file mid-write.
type Writer struct {
	W       io.Writer
	Limit   int
	written int
}

// Write implements io.Writer with the byte budget above.
func (w *Writer) Write(p []byte) (int, error) {
	remain := w.Limit - w.written
	if remain <= 0 {
		return 0, ErrInjected
	}
	if len(p) <= remain {
		n, err := w.W.Write(p)
		w.written += n
		return n, err
	}
	n, err := w.W.Write(p[:remain])
	w.written += n
	if err != nil {
		return n, err
	}
	return n, ErrInjected
}

// BitFlipReader passes the stream of R through unchanged except for a single
// bit: bit Bit (0-7) of the byte at stream offset Offset is inverted. With
// Offset beyond the stream length it is a plain pass-through.
type BitFlipReader struct {
	R      io.Reader
	Offset int64
	Bit    uint
	pos    int64
}

// Read implements io.Reader with the one-bit corruption above.
func (r *BitFlipReader) Read(p []byte) (int, error) {
	n, err := r.R.Read(p)
	if i := r.Offset - r.pos; i >= 0 && i < int64(n) {
		p[i] ^= 1 << (r.Bit & 7)
	}
	r.pos += int64(n)
	return n, err
}

// FlipBit returns a copy of data with bit (0-7) of byte offset inverted; a
// no-op copy when offset is out of range. Convenient for corpus generation.
func FlipBit(data []byte, offset int64, bit uint) []byte {
	out := append([]byte(nil), data...)
	if offset >= 0 && offset < int64(len(out)) {
		out[offset] ^= 1 << (bit & 7)
	}
	return out
}

// CrashAfter returns a training OnStep hook that succeeds for the first n
// calls and returns ErrCrash on call n (0-based global step index is ignored;
// only the call count matters). It simulates the process dying mid-epoch: the
// training loop aborts immediately, leaving only the periodic checkpoints
// behind.
func CrashAfter(n int) func(step int, loss float64) error {
	var calls atomic.Int64
	return func(int, float64) error {
		if calls.Add(1)-1 >= int64(n) {
			return ErrCrash
		}
		return nil
	}
}

// PanicOn returns a serving BeforeQuery hook that panics when invoked for any
// of the given query indices. The panic fires inside the worker goroutine's
// recover scope, modeling a query that trips a bug in the model or sampler.
func PanicOn(indices ...int) func(i int) {
	set := make(map[int]bool, len(indices))
	for _, i := range indices {
		set[i] = true
	}
	return func(i int) {
		if set[i] {
			panic(fmt.Sprintf("faultinject: scheduled panic on query %d", i))
		}
	}
}

// CancelAt returns a serving BeforeQuery hook that invokes cancel the first
// time query index i (or any later index) is reached, simulating a client
// abandoning a batch mid-flight. cancel must be safe to call from any worker
// goroutine (context.CancelFunc is).
func CancelAt(i int, cancel func()) func(int) {
	var done atomic.Bool
	return func(idx int) {
		if idx >= i && done.CompareAndSwap(false, true) {
			cancel()
		}
	}
}
