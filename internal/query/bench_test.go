package query

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

func benchTable(b *testing.B, rows int) *table.Table {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	domains := []int{4, 75, 89, 63, 59, 9, 2101, 225, 2, 2, 2}
	codes := make([][]int32, len(domains))
	names := make([]string, len(domains))
	for c := range codes {
		names[c] = string(rune('a' + c))
		codes[c] = make([]int32, rows)
		for r := range codes[c] {
			codes[c][r] = int32(rng.Intn(domains[c]))
		}
	}
	t, err := table.FromCodes("bench", names, domains, codes)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func BenchmarkExecute(b *testing.B) {
	t := benchTable(b, 100000)
	gen := NewGenerator(t, DefaultGeneratorConfig(), 2)
	regs := make([]*Region, 32)
	for i := range regs {
		var err error
		regs[i], err = Compile(gen.Next(), t)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Execute(regs[i%len(regs)], t)
	}
}

func BenchmarkCompile(b *testing.B) {
	t := benchTable(b, 1000)
	gen := NewGenerator(t, DefaultGeneratorConfig(), 3)
	qs := make([]Query, 64)
	for i := range qs {
		qs[i] = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(qs[i%len(qs)], t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	t := benchTable(b, 10000)
	gen := NewGenerator(t, DefaultGeneratorConfig(), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}
