package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

// smallTable returns a 2-column table with known contents:
// x ∈ {0..4} with codes equal to values, y ∈ {0..2}.
func smallTable(t *testing.T) *table.Table {
	t.Helper()
	codesX := []int32{0, 1, 2, 3, 4, 0, 1, 2, 0, 0}
	codesY := []int32{0, 0, 1, 1, 2, 2, 0, 1, 0, 2}
	tbl, err := table.FromCodes("small", []string{"x", "y"}, []int{5, 3},
		[][]int32{codesX, codesY})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func mustCompile(t *testing.T, q Query, tbl *table.Table) *Region {
	t.Helper()
	reg, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestCompileWildcards(t *testing.T) {
	tbl := smallTable(t)
	reg := mustCompile(t, Query{}, tbl)
	if !reg.Cols[0].IsAll() || !reg.Cols[1].IsAll() {
		t.Fatal("empty query should compile to all-wildcard region")
	}
	if reg.Size() != 15 {
		t.Fatalf("Size = %v, want 15", reg.Size())
	}
	if Execute(reg, tbl) != 10 {
		t.Fatal("wildcard query should match every row")
	}
}

func TestCompileOperators(t *testing.T) {
	tbl := smallTable(t)
	cases := []struct {
		pred Predicate
		want []bool // valid over x's domain {0..4}
	}{
		{Predicate{Col: 0, Op: OpEq, Code: 2}, []bool{false, false, true, false, false}},
		{Predicate{Col: 0, Op: OpNe, Code: 2}, []bool{true, true, false, true, true}},
		{Predicate{Col: 0, Op: OpLt, Code: 2}, []bool{true, true, false, false, false}},
		{Predicate{Col: 0, Op: OpLe, Code: 2}, []bool{true, true, true, false, false}},
		{Predicate{Col: 0, Op: OpGt, Code: 2}, []bool{false, false, false, true, true}},
		{Predicate{Col: 0, Op: OpGe, Code: 2}, []bool{false, false, true, true, true}},
		{Predicate{Col: 0, Op: OpBetween, Code: 1, Code2: 3}, []bool{false, true, true, true, false}},
		{Predicate{Col: 0, Op: OpIn, Set: []int32{0, 4}}, []bool{true, false, false, false, true}},
	}
	for _, c := range cases {
		reg := mustCompile(t, Query{Preds: []Predicate{c.pred}}, tbl)
		for code, want := range c.want {
			if reg.Cols[0].Valid[code] != want {
				t.Fatalf("%v: code %d valid=%v want %v", c.pred.Op, code, reg.Cols[0].Valid[code], want)
			}
		}
	}
}

func TestCompileConjunctionIntersects(t *testing.T) {
	tbl := smallTable(t)
	q := Query{Preds: []Predicate{
		{Col: 0, Op: OpGe, Code: 1},
		{Col: 0, Op: OpLe, Code: 3},
		{Col: 0, Op: OpNe, Code: 2},
	}}
	reg := mustCompile(t, q, tbl)
	want := []bool{false, true, false, true, false}
	for code, w := range want {
		if reg.Cols[0].Valid[code] != w {
			t.Fatalf("conjunction: code %d = %v", code, reg.Cols[0].Valid[code])
		}
	}
	if reg.Cols[0].Count != 2 || reg.Cols[0].Lo != 1 || reg.Cols[0].Hi != 4 {
		t.Fatalf("bounds: count=%d lo=%d hi=%d", reg.Cols[0].Count, reg.Cols[0].Lo, reg.Cols[0].Hi)
	}
}

func TestCompileRejectsBadColumnAndLiteral(t *testing.T) {
	tbl := smallTable(t)
	if _, err := Compile(Query{Preds: []Predicate{{Col: 7, Op: OpEq}}}, tbl); err == nil {
		t.Fatal("want error for bad column")
	}
	if _, err := Compile(Query{Preds: []Predicate{{Col: 0, Op: OpEq, Code: 99}}}, tbl); err == nil {
		t.Fatal("want error for out-of-domain literal")
	}
	if _, err := Compile(Query{Preds: []Predicate{{Col: 0, Op: OpIn, Set: []int32{-1}}}}, tbl); err == nil {
		t.Fatal("want error for out-of-domain IN literal")
	}
}

func TestExecuteCounts(t *testing.T) {
	tbl := smallTable(t)
	cases := []struct {
		q    Query
		want int64
	}{
		{Query{Preds: []Predicate{{Col: 0, Op: OpEq, Code: 0}}}, 4},
		{Query{Preds: []Predicate{{Col: 1, Op: OpEq, Code: 2}}}, 3},
		{Query{Preds: []Predicate{{Col: 0, Op: OpEq, Code: 0}, {Col: 1, Op: OpEq, Code: 2}}}, 2},
		{Query{Preds: []Predicate{{Col: 0, Op: OpLe, Code: 1}, {Col: 1, Op: OpGe, Code: 1}}}, 2},
		{Query{Preds: []Predicate{{Col: 0, Op: OpEq, Code: 4}, {Col: 1, Op: OpEq, Code: 0}}}, 0},
	}
	for i, c := range cases {
		reg := mustCompile(t, c.q, tbl)
		if got := Execute(reg, tbl); got != c.want {
			t.Fatalf("case %d: Execute = %d, want %d", i, got, c.want)
		}
	}
}

func TestSelectivity(t *testing.T) {
	tbl := smallTable(t)
	reg := mustCompile(t, Query{Preds: []Predicate{{Col: 0, Op: OpEq, Code: 0}}}, tbl)
	if got := Selectivity(reg, tbl); got != 0.4 {
		t.Fatalf("Selectivity = %v", got)
	}
}

func TestRegionIntersect(t *testing.T) {
	tbl := smallTable(t)
	a := mustCompile(t, Query{Preds: []Predicate{{Col: 0, Op: OpLe, Code: 2}}}, tbl)
	b := mustCompile(t, Query{Preds: []Predicate{{Col: 0, Op: OpGe, Code: 2}}}, tbl)
	c := a.Intersect(b)
	if c.Cols[0].Count != 1 || !c.Cols[0].Valid[2] {
		t.Fatalf("intersect wrong: %+v", c.Cols[0])
	}
	if c.Cols[1].Count != 3 {
		t.Fatal("wildcard column should survive intersection")
	}
}

func TestRegionMatches(t *testing.T) {
	tbl := smallTable(t)
	reg := mustCompile(t, Query{Preds: []Predicate{{Col: 0, Op: OpGe, Code: 3}}}, tbl)
	if reg.Matches([]int32{2, 0}) {
		t.Fatal("row outside region matched")
	}
	if !reg.Matches([]int32{3, 1}) {
		t.Fatal("row inside region rejected")
	}
}

func TestQueryString(t *testing.T) {
	tbl := smallTable(t)
	q := Query{Preds: []Predicate{
		{Col: 0, Op: OpLe, Code: 3},
		{Col: 1, Op: OpIn, Set: []int32{0, 2}},
	}}
	got := q.String(tbl)
	want := "x <= 3 AND y IN (0, 2)"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if (Query{}).String(tbl) != "TRUE" {
		t.Fatal("empty query should render TRUE")
	}
}

func TestGeneratorRespectsConfig(t *testing.T) {
	tbl := randomTable(t, 8, 2000, []int{4, 50, 9, 100, 3, 30, 2, 500})
	cfg := GeneratorConfig{MinFilters: 3, MaxFilters: 6, SmallDomainThreshold: 10}
	g := NewGenerator(tbl, cfg, 42)
	for i := 0; i < 200; i++ {
		q := g.Next()
		f := q.NumFilters()
		if f < 3 || f > 6 {
			t.Fatalf("query %d: %d filters", i, f)
		}
		if len(q.Preds) != f {
			t.Fatalf("query %d: duplicate column filters", i)
		}
		for _, p := range q.Preds {
			d := tbl.Cols[p.Col].DomainSize()
			if d < 10 && p.Op != OpEq {
				t.Fatalf("query %d: op %v on small domain %d", i, p.Op, d)
			}
			if p.Op != OpIn && (p.Code < 0 || int(p.Code) >= d) {
				t.Fatalf("query %d: literal out of domain", i)
			}
		}
	}
}

func TestGeneratorInDistributionLiteralsHit(t *testing.T) {
	// Equality-only queries with literals from data tuples must sometimes
	// match rows; spot-check that not everything is empty.
	tbl := randomTable(t, 5, 3000, []int{4, 6, 8, 5, 3})
	cfg := GeneratorConfig{MinFilters: 2, MaxFilters: 3, SmallDomainThreshold: 100}
	// Threshold 100 forces... actually forces equality on every column.
	g := NewGenerator(tbl, cfg, 7)
	nonEmpty := 0
	for i := 0; i < 100; i++ {
		q := g.Next()
		reg := mustCompile(t, q, tbl)
		if Execute(reg, tbl) > 0 {
			nonEmpty++
		}
	}
	// Literals come from sampled tuples, but a conjunction of equalities on
	// different columns of *one* tuple always matches at least that tuple.
	if nonEmpty != 100 {
		t.Fatalf("only %d/100 in-distribution equality queries matched", nonEmpty)
	}
}

func TestGeneratorOODMostlyEmptyOnSparseTable(t *testing.T) {
	// A table occupying a tiny corner of a huge joint space: OOD literals
	// should mostly miss.
	nRows := 500
	codes := make([][]int32, 6)
	for c := range codes {
		codes[c] = make([]int32, nRows)
		for r := range codes[c] {
			codes[c][r] = int32(r % 7) // only 7 of 1000 values used... domain is 1000
		}
	}
	tbl, err := table.FromCodes("sparse", []string{"a", "b", "c", "d", "e", "f"},
		[]int{1000, 1000, 1000, 1000, 1000, 1000}, codes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := GeneratorConfig{MinFilters: 4, MaxFilters: 6, SmallDomainThreshold: 10, OOD: true}
	g := NewGenerator(tbl, cfg, 3)
	empty := 0
	for i := 0; i < 100; i++ {
		reg := mustCompile(t, g.Next(), tbl)
		if Execute(reg, tbl) == 0 {
			empty++
		}
	}
	if empty < 50 {
		t.Fatalf("only %d/100 OOD queries empty; want most", empty)
	}
}

func TestGenerateWorkload(t *testing.T) {
	tbl := randomTable(t, 6, 1000, []int{4, 20, 9, 40, 3, 15})
	w, err := GenerateWorkload(tbl, GeneratorConfig{MinFilters: 2, MaxFilters: 4, SmallDomainThreshold: 10}, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 50 || len(w.Regions) != 50 || len(w.TrueCard) != 50 {
		t.Fatal("workload sizes wrong")
	}
	for i := range w.Queries {
		if w.TrueCard[i] < 0 || w.TrueCard[i] > 1000 {
			t.Fatalf("query %d: true card %d", i, w.TrueCard[i])
		}
		if s := w.TrueSelectivity(i); s != float64(w.TrueCard[i])/1000 {
			t.Fatalf("TrueSelectivity mismatch at %d", i)
		}
	}
}

func TestGeneratorExtendedOps(t *testing.T) {
	tbl := randomTable(t, 4, 1000, []int{100, 200, 50, 30})
	cfg := GeneratorConfig{MinFilters: 2, MaxFilters: 4, SmallDomainThreshold: 10, AllowInBetween: true}
	g := NewGenerator(tbl, cfg, 11)
	sawIn, sawBetween := false, false
	for i := 0; i < 300; i++ {
		q := g.Next()
		for _, p := range q.Preds {
			switch p.Op {
			case OpIn:
				sawIn = true
			case OpBetween:
				sawBetween = true
				if p.Code > p.Code2 {
					t.Fatal("BETWEEN bounds inverted")
				}
			}
		}
		if _, err := Compile(q, tbl); err != nil {
			t.Fatalf("query %d does not compile: %v", i, err)
		}
	}
	if !sawIn || !sawBetween {
		t.Fatalf("extended ops not generated: in=%v between=%v", sawIn, sawBetween)
	}
}

// Property: Execute(Compile(q)) equals a naive row-by-row predicate check.
func TestQuickExecuteMatchesNaive(t *testing.T) {
	tbl := randomTable(t, 4, 500, []int{6, 11, 4, 17})
	g := NewGenerator(tbl, GeneratorConfig{MinFilters: 1, MaxFilters: 4, SmallDomainThreshold: 10, AllowInBetween: true}, 99)
	f := func() bool {
		q := g.Next()
		reg, err := Compile(q, tbl)
		if err != nil {
			return false
		}
		var naive int64
		row := make([]int32, tbl.NumCols())
		for r := 0; r < tbl.NumRows(); r++ {
			tbl.Row(r, row)
			if reg.Matches(row) {
				naive++
			}
		}
		return Execute(reg, tbl) == naive
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomTable builds a table with the given per-column domain sizes and
// uniformly random codes.
func randomTable(t *testing.T, cols, rows int, domains []int) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(123))
	names := make([]string, cols)
	codes := make([][]int32, cols)
	for c := 0; c < cols; c++ {
		names[c] = string(rune('a' + c))
		codes[c] = make([]int32, rows)
		for r := range codes[c] {
			codes[c][r] = int32(rng.Intn(domains[c]))
		}
	}
	tbl, err := table.FromCodes("rand", names, domains, codes)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}
