package query

import (
	"sync"
	"sync/atomic"

	"repro/internal/table"
)

// Execute counts the tuples of t inside the region exactly, scanning
// column-wise in parallel. It is the ground truth every estimator is scored
// against (the paper obtains true selectivities by executing queries on
// Postgres; here the substrate is our own column store, so the scan is exact
// by construction).
func Execute(reg *Region, t *table.Table) int64 {
	if reg.IsEmpty() {
		return 0
	}
	// Probe the most selective column first so most rows short-circuit
	// after one lookup.
	order := columnOrderBySelectivity(reg)
	if len(order) == 0 {
		return int64(t.NumRows()) // every column is a wildcard
	}
	rows := t.NumRows()
	var total int64
	var wg sync.WaitGroup
	const chunk = 1 << 15
	for lo := 0; lo < rows; lo += chunk {
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var n int64
		row:
			for r := lo; r < hi; r++ {
				for _, ci := range order {
					if !reg.Cols[ci].Valid[t.Cols[ci].Codes[r]] {
						continue row
					}
				}
				n++
			}
			atomic.AddInt64(&total, n)
		}(lo, hi)
	}
	wg.Wait()
	return total
}

// Selectivity executes the region and returns the matching fraction of t.
func Selectivity(reg *Region, t *table.Table) float64 {
	return float64(Execute(reg, t)) / float64(t.NumRows())
}

// columnOrderBySelectivity orders restricted columns tightest-range first and
// drops wildcards, which never reject a row.
func columnOrderBySelectivity(reg *Region) []int {
	type cs struct {
		idx  int
		frac float64
	}
	cands := make([]cs, 0, len(reg.Cols))
	for i := range reg.Cols {
		c := &reg.Cols[i]
		if c.IsAll() {
			continue
		}
		cands = append(cands, cs{i, float64(c.Count) / float64(len(c.Valid))})
	}
	// Insertion sort: the list is at most a dozen entries.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].frac < cands[j-1].frac; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out
}
