package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/table"
)

// ParseWhere lowers a SQL-ish conjunction such as
//
//	"price<=100 AND state=NY AND year>2015"
//
// onto a code-space Query against t. Supported operators: =, !=, <>, <, <=,
// >, >=. Literals are resolved against the column's dictionary: equality
// operators require an exact domain hit; range operators accept any literal
// and bind to the dictionary's lower bound (code order equals value order,
// so the comparison semantics are preserved).
func ParseWhere(s string, t *table.Table) (Query, error) {
	var q Query
	for _, clause := range strings.Split(s, " AND ") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		p, err := parseClause(clause, t)
		if err != nil {
			return Query{}, err
		}
		q.Preds = append(q.Preds, p)
	}
	if len(q.Preds) == 0 {
		return Query{}, fmt.Errorf("query: no predicates in %q", s)
	}
	return q, nil
}

// opTokens is ordered longest-first so "<=" matches before "<".
var opTokens = []struct {
	tok string
	op  Op
}{
	{"<=", OpLe}, {">=", OpGe}, {"!=", OpNe}, {"<>", OpNe},
	{"<", OpLt}, {">", OpGt}, {"=", OpEq},
}

func parseClause(clause string, t *table.Table) (Predicate, error) {
	for _, o := range opTokens {
		i := strings.Index(clause, o.tok)
		if i < 0 {
			continue
		}
		colName := strings.TrimSpace(clause[:i])
		lit := strings.TrimSpace(clause[i+len(o.tok):])
		if colName == "" || lit == "" {
			return Predicate{}, fmt.Errorf("query: malformed clause %q", clause)
		}
		ci := t.ColumnIndex(colName)
		if ci < 0 {
			return Predicate{}, fmt.Errorf("query: unknown column %q", colName)
		}
		code, err := literalCode(t.Cols[ci], lit, o.op)
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: ci, Op: o.op, Code: code}, nil
	}
	return Predicate{}, fmt.Errorf("query: cannot parse clause %q", clause)
}

// literalCode maps a rendered literal onto the column's code space.
func literalCode(col *table.Column, lit string, op Op) (int32, error) {
	exact := op == OpEq || op == OpNe
	switch col.Kind {
	case table.KindInt:
		v, err := strconv.ParseInt(strings.Trim(lit, `'"`), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("query: column %q wants an integer literal, got %q", col.Name, lit)
		}
		if code, ok := col.CodeOfInt(v); ok {
			return code, nil
		}
		if exact {
			return 0, fmt.Errorf("query: value %q not in the domain of %q", lit, col.Name)
		}
		return clampBound(col.LowerBoundInt(v), col.DomainSize()), nil
	case table.KindFloat:
		v, err := strconv.ParseFloat(strings.Trim(lit, `'"`), 64)
		if err != nil {
			return 0, fmt.Errorf("query: column %q wants a numeric literal, got %q", col.Name, lit)
		}
		if code, ok := col.CodeOfFloat(v); ok {
			return code, nil
		}
		if exact {
			return 0, fmt.Errorf("query: value %q not in the domain of %q", lit, col.Name)
		}
		return clampBound(col.LowerBoundFloat(v), col.DomainSize()), nil
	default:
		v := strings.Trim(lit, `'"`)
		if code, ok := col.CodeOfString(v); ok {
			return code, nil
		}
		if exact {
			return 0, fmt.Errorf("query: value %q not in the domain of %q", lit, col.Name)
		}
		return clampBound(col.LowerBoundString(v), col.DomainSize()), nil
	}
}

func clampBound(lb int32, domain int) int32 {
	if lb >= int32(domain) {
		return int32(domain) - 1
	}
	return lb
}
