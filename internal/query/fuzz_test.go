package query

import (
	"testing"
)

// FuzzParseWhere throws arbitrary strings at the WHERE-clause parser. The
// contract under fuzzing: ParseWhere never panics; every accepted query has
// at least one predicate, references only real columns with in-domain codes,
// and compiles into a region without error.
func FuzzParseWhere(f *testing.F) {
	for _, s := range []string{
		"price<=100 AND state=NY",
		"price=10",
		"weight>1.5",
		"state!=CA",
		"state<>WA",
		"price>=200 AND weight<9.0 AND state=NY",
		"price<=100 AND price>=10 AND price!=50",
		"state='NY'",
		`state="CA"`,
		"",
		" AND ",
		"price",
		"price<=",
		"<=5",
		"price==10",
		"nosuch=1",
		"price=999",
		"price<abc",
		"weight=not-a-number",
		"price<=100 AND",
		"a<b<c",
		"state=NY AND state=NY AND state=NY AND state=NY",
		"price=50 AND price=50",
		"a=b AND =",
		"price<",
		"price!=200 AND weight>=9.0",
		"≤≥",
	} {
		f.Add(s)
	}
	tbl := parseTable(f)
	f.Fuzz(func(t *testing.T, s string) {
		q, err := ParseWhere(s, tbl)
		if err != nil {
			return // rejection is fine; panicking or accepting garbage is not
		}
		if len(q.Preds) == 0 {
			t.Fatalf("ParseWhere(%q) accepted a query with no predicates", s)
		}
		for _, p := range q.Preds {
			if p.Col < 0 || p.Col >= tbl.NumCols() {
				t.Fatalf("ParseWhere(%q): predicate column %d out of range", s, p.Col)
			}
			if d := int32(tbl.Cols[p.Col].DomainSize()); p.Code < 0 || p.Code >= d {
				t.Fatalf("ParseWhere(%q): code %d outside domain [0,%d)", s, p.Code, d)
			}
		}
		if _, err := Compile(q, tbl); err != nil {
			t.Fatalf("ParseWhere(%q) accepted a query that does not compile: %v", s, err)
		}
	})
}
