package query

import (
	"math/rand"

	"repro/internal/table"
)

// GeneratorConfig controls the §6.1.3 workload generator.
type GeneratorConfig struct {
	// MinFilters and MaxFilters bound the number of filtered columns f,
	// drawn uniformly. The paper uses 5 ≤ f ≤ 11 ("we always include at
	// least five filters to avoid queries with very high selectivity").
	// Both are clamped to the table's column count.
	MinFilters, MaxFilters int

	// SmallDomainThreshold: columns with a domain smaller than this always
	// receive an equality filter; larger domains draw uniformly from
	// {=, ≤, ≥} (paper: threshold 10, "avoid placing a range predicate on
	// categoricals").
	SmallDomainThreshold int

	// OOD draws literals uniformly from the whole domain instead of from a
	// sampled data tuple, producing the out-of-distribution workload of
	// §6.3 (≈98% of such queries on DMV match nothing).
	OOD bool

	// AllowInBetween extends the operator pool on large domains with IN
	// (random small set) and BETWEEN (random interval). Off in the paper's
	// generator; exposed for the extended workloads.
	AllowInBetween bool
}

// DefaultGeneratorConfig returns the paper's macrobenchmark settings.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{MinFilters: 5, MaxFilters: 11, SmallDomainThreshold: 10}
}

// Generator produces random conjunctive queries over a table, following the
// procedure of §6.1.3: pick f, pick f distinct columns, pick operators by
// domain size, and take literals from a uniformly sampled data tuple (so the
// literals follow the data distribution) or from the full domain (OOD).
type Generator struct {
	t   *table.Table
	cfg GeneratorConfig
	rng *rand.Rand

	tuple []int32
	cols  []int
}

// NewGenerator builds a deterministic generator seeded with seed.
func NewGenerator(t *table.Table, cfg GeneratorConfig, seed int64) *Generator {
	if cfg.MinFilters < 1 {
		cfg.MinFilters = 1
	}
	if cfg.MaxFilters < cfg.MinFilters {
		cfg.MaxFilters = cfg.MinFilters
	}
	if cfg.MaxFilters > t.NumCols() {
		cfg.MaxFilters = t.NumCols()
	}
	if cfg.MinFilters > cfg.MaxFilters {
		cfg.MinFilters = cfg.MaxFilters
	}
	if cfg.SmallDomainThreshold <= 0 {
		cfg.SmallDomainThreshold = 10
	}
	g := &Generator{
		t:     t,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		tuple: make([]int32, t.NumCols()),
		cols:  make([]int, t.NumCols()),
	}
	for i := range g.cols {
		g.cols[i] = i
	}
	return g
}

// Next returns the next random query.
func (g *Generator) Next() Query {
	f := g.cfg.MinFilters + g.rng.Intn(g.cfg.MaxFilters-g.cfg.MinFilters+1)
	// Partial Fisher–Yates: the first f entries become the filtered columns.
	for i := 0; i < f; i++ {
		j := i + g.rng.Intn(len(g.cols)-i)
		g.cols[i], g.cols[j] = g.cols[j], g.cols[i]
	}
	g.t.SampleRow(g.rng, g.tuple)

	preds := make([]Predicate, 0, f)
	for _, ci := range g.cols[:f] {
		d := g.t.Cols[ci].DomainSize()
		var lit int32
		if g.cfg.OOD {
			lit = int32(g.rng.Intn(d))
		} else {
			lit = g.tuple[ci]
		}
		preds = append(preds, g.pickPredicate(ci, d, lit))
	}
	return Query{Preds: preds}
}

func (g *Generator) pickPredicate(col, domain int, lit int32) Predicate {
	if domain < g.cfg.SmallDomainThreshold {
		return Predicate{Col: col, Op: OpEq, Code: lit}
	}
	pool := 3
	if g.cfg.AllowInBetween {
		pool = 5
	}
	switch g.rng.Intn(pool) {
	case 0:
		return Predicate{Col: col, Op: OpEq, Code: lit}
	case 1:
		return Predicate{Col: col, Op: OpLe, Code: lit}
	case 2:
		return Predicate{Col: col, Op: OpGe, Code: lit}
	case 3: // BETWEEN a random interval around the literal
		span := int32(1 + g.rng.Intn(domain/4+1))
		lo, hi := lit-span, lit+span
		if lo < 0 {
			lo = 0
		}
		if hi >= int32(domain) {
			hi = int32(domain) - 1
		}
		return Predicate{Col: col, Op: OpBetween, Code: lo, Code2: hi}
	default: // IN: the literal plus a few random co-members
		k := 1 + g.rng.Intn(4)
		set := make([]int32, 0, k+1)
		set = append(set, lit)
		for i := 0; i < k; i++ {
			set = append(set, int32(g.rng.Intn(domain)))
		}
		return Predicate{Col: col, Op: OpIn, Set: set}
	}
}

// Workload is a batch of queries with their compiled regions and true
// cardinalities, ready for estimator evaluation.
type Workload struct {
	Queries  []Query
	Regions  []*Region
	TrueCard []int64
	NumRows  int64
}

// GenerateWorkload draws n queries and executes each one for ground truth.
func GenerateWorkload(t *table.Table, cfg GeneratorConfig, seed int64, n int) (*Workload, error) {
	g := NewGenerator(t, cfg, seed)
	w := &Workload{
		Queries:  make([]Query, n),
		Regions:  make([]*Region, n),
		TrueCard: make([]int64, n),
		NumRows:  int64(t.NumRows()),
	}
	for i := 0; i < n; i++ {
		w.Queries[i] = g.Next()
		reg, err := Compile(w.Queries[i], t)
		if err != nil {
			return nil, err
		}
		w.Regions[i] = reg
		w.TrueCard[i] = Execute(reg, t)
	}
	return w, nil
}

// TrueSelectivity returns the ground-truth selectivity of query i.
func (w *Workload) TrueSelectivity(i int) float64 {
	return float64(w.TrueCard[i]) / float64(w.NumRows)
}
