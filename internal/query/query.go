// Package query defines the predicate language of the paper (§2.2):
// conjunctions of =, ≠, <, ≤, >, ≥, IN, and BETWEEN filters over
// dictionary-encoded columns, together with an exact executor (ground truth),
// a compiler from conjunctions to per-column valid-value regions (the Ri sets
// consumed by progressive sampling), and the §6.1.3 workload generators.
package query

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Op is a comparison operator.
type Op int

// The supported filter operators. All of them — including IN and BETWEEN —
// compile to subsets of a column's finite domain, which is exactly the
// paper's formulation ("the usual =, ≠, <, ≤, >, ≥ operators, the rectangular
// containment, or even the IN operator are considered ranges").
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpIn
	OpBetween
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIn:
		return "IN"
	case OpBetween:
		return "BETWEEN"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Predicate is a single filter on one column, expressed in dictionary-code
// space. Code is the literal; Code2 is the upper bound for BETWEEN; Set holds
// the literals for IN.
type Predicate struct {
	Col   int
	Op    Op
	Code  int32
	Code2 int32
	Set   []int32
}

// Query is a conjunction of predicates. Columns without a predicate are
// wildcards.
type Query struct {
	Preds []Predicate
}

// String renders the query as SQL-ish text against the given table.
func (q Query) String(t *table.Table) string {
	if len(q.Preds) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		col := t.Cols[p.Col]
		switch p.Op {
		case OpIn:
			vals := make([]string, len(p.Set))
			for j, c := range p.Set {
				vals[j] = col.ValueString(c)
			}
			parts[i] = fmt.Sprintf("%s IN (%s)", col.Name, strings.Join(vals, ", "))
		case OpBetween:
			parts[i] = fmt.Sprintf("%s BETWEEN %s AND %s",
				col.Name, col.ValueString(p.Code), col.ValueString(p.Code2))
		default:
			parts[i] = fmt.Sprintf("%s %s %s", col.Name, p.Op, col.ValueString(p.Code))
		}
	}
	return strings.Join(parts, " AND ")
}

// NumFilters returns the number of distinct filtered columns.
func (q Query) NumFilters() int {
	seen := make(map[int]struct{}, len(q.Preds))
	for _, p := range q.Preds {
		seen[p.Col] = struct{}{}
	}
	return len(seen)
}

// ColumnRange is the set Ri ⊆ [0, Di) of codes a column may take under a
// query. Valid is the indicator over the domain, Count its cardinality, and
// [Lo, Hi) the tight interval bounding the true entries (used by interval-
// only estimators such as histograms).
type ColumnRange struct {
	Valid []bool
	Count int
	Lo    int32 // first valid code (domain size if Count == 0)
	Hi    int32 // one past the last valid code (0 if Count == 0)
}

// IsAll reports whether the range admits the whole domain (a wildcard).
func (r *ColumnRange) IsAll() bool { return r.Count == len(r.Valid) }

// IsEmpty reports whether no code satisfies the range.
func (r *ColumnRange) IsEmpty() bool { return r.Count == 0 }

// Region is a query compiled to one ColumnRange per table column. It is the
// cross-product query region R = R1 × ... × Rn of §5.
type Region struct {
	Cols []ColumnRange
}

// Compile lowers a conjunction onto per-column valid sets for t. Unfiltered
// columns get full-domain wildcards, matching the paper's treatment
// ("unfiltered columns are treated as having a wildcard, Ri = [0, Di)").
//
// Unlike CompileDomains, Compile consults the table's dictionaries: on
// columns whose dictionary has been extended by online appends (code order no
// longer value order past Column.Ext), range predicates are evaluated by
// value comparison so arrival-ordered tail codes land on the correct side.
func Compile(q Query, t *table.Table) (*Region, error) {
	return compile(q, t.DomainSizes(), t)
}

// CompileDomains is Compile given only per-column domain sizes — enough for
// an estimator loaded from disk without its training table. Range predicates
// are interpreted purely in code space, which is exact while dictionaries are
// fully sorted.
func CompileDomains(q Query, domains []int) (*Region, error) {
	return compile(q, domains, nil)
}

// CompileSnapshot lowers a conjunction onto the model's domain sizes while
// taking value order from t's dictionaries. It is the serving-path compiler
// for lifecycle estimators: domains is the model's view (literals past it are
// rejected — the model assigns those codes no mass), while t may carry
// arrival-ordered dictionary tails from online appends, where range operators
// must compare by value rather than by code position.
func CompileSnapshot(q Query, domains []int, t *table.Table) (*Region, error) {
	if t == nil {
		return compile(q, domains, nil)
	}
	if len(domains) != t.NumCols() {
		return nil, fmt.Errorf("query: %d model domains over a %d-column snapshot", len(domains), t.NumCols())
	}
	return compile(q, domains, t)
}

func compile(q Query, domains []int, t *table.Table) (*Region, error) {
	reg := &Region{Cols: make([]ColumnRange, len(domains))}
	for i, d := range domains {
		valid := make([]bool, d)
		for j := range valid {
			valid[j] = true
		}
		reg.Cols[i] = ColumnRange{Valid: valid, Count: d, Lo: 0, Hi: int32(d)}
	}
	for _, p := range q.Preds {
		if p.Col < 0 || p.Col >= len(domains) {
			return nil, fmt.Errorf("query: predicate on column %d of %d", p.Col, len(domains))
		}
		if err := checkLiteral(p, int32(domains[p.Col])); err != nil {
			return nil, err
		}
		var less func(a, b int32) bool
		if t != nil && t.Cols[p.Col].Extended() {
			less = t.Cols[p.Col].Less
		}
		applyPredicate(&reg.Cols[p.Col], p, less)
	}
	for i := range reg.Cols {
		reg.Cols[i].recount()
	}
	return reg, nil
}

func checkLiteral(p Predicate, d int32) error {
	inRange := func(c int32) bool { return c >= 0 && c < d }
	switch p.Op {
	case OpIn:
		for _, c := range p.Set {
			if !inRange(c) {
				return fmt.Errorf("query: IN literal code %d outside domain [0,%d)", c, d)
			}
		}
	case OpBetween:
		if !inRange(p.Code) || !inRange(p.Code2) {
			return fmt.Errorf("query: BETWEEN codes (%d,%d) outside domain [0,%d)", p.Code, p.Code2, d)
		}
	default:
		if !inRange(p.Code) {
			return fmt.Errorf("query: literal code %d outside domain [0,%d)", p.Code, d)
		}
	}
	return nil
}

// applyPredicate intersects one predicate into a column range. less, when
// non-nil, supplies the value order for range operators (needed once a
// dictionary carries an arrival-ordered tail); nil means code order is value
// order and plain code comparison applies.
func applyPredicate(r *ColumnRange, p Predicate, less func(a, b int32) bool) {
	if less == nil {
		less = func(a, b int32) bool { return a < b }
	}
	keep := func(code int32) bool {
		switch p.Op {
		case OpEq:
			return code == p.Code
		case OpNe:
			return code != p.Code
		case OpLt:
			return less(code, p.Code)
		case OpLe:
			return !less(p.Code, code)
		case OpGt:
			return less(p.Code, code)
		case OpGe:
			return !less(code, p.Code)
		case OpBetween:
			return !less(code, p.Code) && !less(p.Code2, code)
		case OpIn:
			for _, c := range p.Set {
				if c == code {
					return true
				}
			}
			return false
		}
		return false
	}
	for code := range r.Valid {
		if r.Valid[code] && !keep(int32(code)) {
			r.Valid[code] = false
		}
	}
}

// recount refreshes Count, Lo, and Hi after Valid changed.
func (r *ColumnRange) recount() {
	r.Count = 0
	r.Lo = int32(len(r.Valid))
	r.Hi = 0
	for code, ok := range r.Valid {
		if !ok {
			continue
		}
		r.Count++
		if int32(code) < r.Lo {
			r.Lo = int32(code)
		}
		r.Hi = int32(code) + 1
	}
}

// Size returns the number of discrete points in the query region, Π|Ri|
// (Table 6's "query region" column). float64 because it overflows int64.
func (r *Region) Size() float64 {
	p := 1.0
	for i := range r.Cols {
		p *= float64(r.Cols[i].Count)
	}
	return p
}

// IsEmpty reports whether any column's range is empty, which forces
// selectivity zero.
func (r *Region) IsEmpty() bool {
	for i := range r.Cols {
		if r.Cols[i].Count == 0 {
			return true
		}
	}
	return false
}

// NumRestricted returns how many columns have a non-wildcard range.
func (r *Region) NumRestricted() int {
	n := 0
	for i := range r.Cols {
		if !r.Cols[i].IsAll() {
			n++
		}
	}
	return n
}

// Intersect returns the per-column intersection of two regions over the same
// table; it is the building block of the inclusion–exclusion treatment of
// disjunctions (§2.2).
func (r *Region) Intersect(other *Region) *Region {
	if len(r.Cols) != len(other.Cols) {
		panic("query: Intersect over different tables")
	}
	out := &Region{Cols: make([]ColumnRange, len(r.Cols))}
	for i := range r.Cols {
		a, b := &r.Cols[i], &other.Cols[i]
		valid := make([]bool, len(a.Valid))
		for c := range valid {
			valid[c] = a.Valid[c] && b.Valid[c]
		}
		out.Cols[i] = ColumnRange{Valid: valid}
		out.Cols[i].recount()
	}
	return out
}

// Matches reports whether a tuple of codes falls inside the region.
func (r *Region) Matches(row []int32) bool {
	for i := range r.Cols {
		if !r.Cols[i].Valid[row[i]] {
			return false
		}
	}
	return true
}
