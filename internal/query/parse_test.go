package query

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func parseTable(t testing.TB) *table.Table {
	t.Helper()
	b := table.NewBuilder("orders", []string{"price", "weight", "state"})
	rows := [][]string{
		{"10", "1.5", "NY"},
		{"100", "2.5", "CA"},
		{"50", "1.5", "NY"},
		{"200", "9.0", "WA"},
	}
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestParseWhereBasic(t *testing.T) {
	tbl := parseTable(t)
	q, err := ParseWhere("price<=100 AND state=NY", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("got %d predicates", len(q.Preds))
	}
	if q.Preds[0].Op != OpLe || q.Preds[0].Col != 0 {
		t.Fatalf("pred 0: %+v", q.Preds[0])
	}
	// price domain is {10,50,100,200}; 100 is code 2.
	if q.Preds[0].Code != 2 {
		t.Fatalf("price<=100 code = %d", q.Preds[0].Code)
	}
	if q.Preds[1].Op != OpEq || q.Preds[1].Col != 2 {
		t.Fatalf("pred 1: %+v", q.Preds[1])
	}
	reg, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := Execute(reg, tbl); got != 2 {
		t.Fatalf("Execute = %d, want 2", got)
	}
}

func TestParseWhereAllOperators(t *testing.T) {
	tbl := parseTable(t)
	for _, s := range []string{
		"price=50", "price!=50", "price<>50", "price<100", "price>10",
		"price>=50", "price<=200", "weight<=2.5", "state>=CA",
	} {
		q, err := ParseWhere(s, tbl)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if len(q.Preds) != 1 {
			t.Fatalf("%q: %d preds", s, len(q.Preds))
		}
		if _, err := Compile(q, tbl); err != nil {
			t.Fatalf("%q: compile: %v", s, err)
		}
	}
}

func TestParseWhereRangeLiteralNotInDomain(t *testing.T) {
	tbl := parseTable(t)
	// 75 is not a domain value; <= must bind to the lower bound so that
	// price<=75 matches prices {10, 50}.
	q, err := ParseWhere("price<75", tbl)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := Execute(reg, tbl); got != 2 {
		t.Fatalf("price<75 matched %d rows, want 2", got)
	}
}

func TestParseWhereErrors(t *testing.T) {
	tbl := parseTable(t)
	for _, s := range []string{
		"",          // no predicates
		"bogus=1",   // unknown column
		"price=75",  // equality literal not in domain
		"price~5",   // unknown operator
		"price=abc", // non-numeric literal for int column
		"=5",        // missing column
		"price=",    // missing literal
		"state=TX",  // string equality miss
	} {
		if _, err := ParseWhere(s, tbl); err == nil {
			t.Fatalf("%q: expected error", s)
		}
	}
}

func TestParseWhereQuotedStrings(t *testing.T) {
	tbl := parseTable(t)
	q, err := ParseWhere(`state='NY'`, tbl)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := Execute(reg, tbl); got != 2 {
		t.Fatalf("quoted literal matched %d", got)
	}
}

func TestParseWhereRoundTripsThroughString(t *testing.T) {
	tbl := parseTable(t)
	q, err := ParseWhere("price>=50 AND state=CA", tbl)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String(tbl)
	if !strings.Contains(s, "price >= 50") || !strings.Contains(s, "state = CA") {
		t.Fatalf("rendered: %q", s)
	}
}
