// Package datagen synthesizes the three evaluation datasets of the paper.
//
// The originals are not redistributable (DMV is a public registry extract the
// paper downloaded in 2019; Conviva-A/B are proprietary enterprise logs), so
// this package builds synthetic equivalents that preserve the properties the
// evaluation depends on: the paper's column counts and per-column domain
// sizes, heavily skewed (Zipf) marginals, and strong cross-column
// correlations that independence-assuming estimators cannot capture. Every
// generator is deterministic given its seed, so experiments are reproducible.
//
// Domains are declared (codes in [0, |Ai|)) rather than re-derived by
// scanning; §4.2 permits either ("from user annotation or by scanning"), and
// declared domains reproduce the paper's reported joint sizes exactly.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/table"
)

// colSpec describes one synthetic column: its name, declared domain size, and
// a generator receiving the row index and the codes of earlier columns in the
// same row — the hook through which cross-column correlation is injected.
type colSpec struct {
	name   string
	domain int
	gen    func(row int, prev []int32, rng *rand.Rand) int32
}

// generate materializes a table from column specs, producing rows one at a
// time so each column can condition on its predecessors.
func generate(name string, specs []colSpec, rows int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, len(specs))
	domains := make([]int, len(specs))
	codes := make([][]int32, len(specs))
	for i, s := range specs {
		names[i] = s.name
		domains[i] = s.domain
		codes[i] = make([]int32, rows)
	}
	prev := make([]int32, len(specs))
	for r := 0; r < rows; r++ {
		for c, s := range specs {
			v := s.gen(r, prev[:c], rng)
			if v < 0 || int(v) >= s.domain {
				panic(fmt.Sprintf("datagen: %s.%s generated code %d outside [0,%d)",
					name, s.name, v, s.domain))
			}
			codes[c][r] = v
			prev[c] = v
		}
	}
	t, err := table.FromCodes(name, names, domains, codes)
	if err != nil {
		panic(fmt.Sprintf("datagen: %v", err)) // specs are static; a failure is a bug
	}
	return t
}

// zipf returns a sampler of Zipf-distributed ranks over [0, n) with skew s,
// composed with a fixed pseudo-random permutation so probability mass is
// scattered across the (sorted) domain rather than concentrated at low codes.
// Real columns are skewed but not sorted by frequency; the permutation keeps
// range predicates non-trivial.
func zipf(rng *rand.Rand, s float64, n int, permSeed int64) func() int32 {
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	perm := rand.New(rand.NewSource(permSeed)).Perm(n)
	return func() int32 { return int32(perm[z.Uint64()]) }
}

// jitter returns base + Uniform(-spread, spread), clamped to [0, domain).
func jitter(base int32, spread, domain int, rng *rand.Rand) int32 {
	v := int(base) + rng.Intn(2*spread+1) - spread
	if v < 0 {
		v = 0
	}
	if v >= domain {
		v = domain - 1
	}
	return int32(v)
}

// derive maps a parent code into a child domain deterministically (affine hash
// onto the child domain) and then jitters, yielding a strong but noisy
// functional dependency.
func derive(parent int32, parentDomain, childDomain, spread int, rng *rand.Rand) int32 {
	base := int32((int64(parent)*2654435761 + 12345) % int64(childDomain))
	if base < 0 {
		base += int32(childDomain)
	}
	_ = parentDomain
	return jitter(base, spread, childDomain, rng)
}
