package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/table"
)

// ConvivaADefaultRows is the default row count for the synthetic Conviva-A
// table (original: 4.1M rows; scaled down for CPU training).
const ConvivaADefaultRows = 200_000

// ConvivaA generates a synthetic analogue of the paper's Conviva-A dataset:
// 3 days of video-session logs with 15 columns mixing small-domain
// categorical flags and large-domain numeric quantities (bandwidths in kbps,
// buffering counters), per-column domains spanning 2–1.9K so the joint space
// reaches the paper's ~10^23 scale.
//
// Correlation structure: sessions are driven by a latent quality tier
// (device/CDN/connection class). Error flags fire when bandwidth is low;
// join time, buffering and bitrate are noisy functions of bandwidth; the
// several bandwidth aggregates are mutually consistent (avg ≤ peak, etc.).
func ConvivaA(n int, seed int64) *table.Table {
	if n <= 0 {
		n = ConvivaADefaultRows
	}
	rng := rand.New(rand.NewSource(seed))
	cdnZ := zipf(rng, 1.7, 12, seed+11)
	deviceZ := zipf(rng, 1.5, 40, seed+12)
	cityZ := zipf(rng, 1.9, 950, seed+13)
	bwZ := zipf(rng, 1.25, 1900, seed+14)

	const (
		cDay = iota
		cHour
		cConn
		cCDN
		cDevice
		cCity
		cErrFlag
		cJoinFail
		cBwPeak
		cBwAvg
		cBitrate
		cBufCnt
		cBufSec
		cJoinMS
		cPlayMin
	)
	specs := []colSpec{
		{"day", 3, func(_ int, _ []int32, r *rand.Rand) int32 { return int32(r.Intn(3)) }},
		{"hour", 24, func(_ int, _ []int32, r *rand.Rand) int32 {
			// Prime-time skew: evening hours dominate.
			h := int32(18+r.Intn(6)) % 24
			if r.Float64() < 0.35 {
				h = int32(r.Intn(24))
			}
			return h
		}},
		{"conn_type", 6, func(_ int, _ []int32, r *rand.Rand) int32 {
			// wifi ≫ lte > ethernet > ...
			x := r.Float64()
			switch {
			case x < 0.55:
				return 0
			case x < 0.8:
				return 1
			case x < 0.92:
				return 2
			default:
				return int32(3 + r.Intn(3))
			}
		}},
		{"cdn", 12, func(_ int, _ []int32, _ *rand.Rand) int32 { return cdnZ() }},
		{"device", 40, func(_ int, prev []int32, r *rand.Rand) int32 {
			if prev[cConn] >= 2 { // wired connections skew to TVs/consoles
				return int32(r.Intn(8))
			}
			return deviceZ()
		}},
		{"city", 950, func(_ int, _ []int32, _ *rand.Rand) int32 { return cityZ() }},
		{"error_flag", 2, func(_ int, prev []int32, r *rand.Rand) int32 {
			p := 0.02 + 0.03*float64(prev[cConn])
			if r.Float64() < p {
				return 1
			}
			return 0
		}},
		{"join_failed", 2, func(_ int, prev []int32, r *rand.Rand) int32 {
			p := 0.01
			if prev[cErrFlag] == 1 {
				p = 0.6
			}
			if r.Float64() < p {
				return 1
			}
			return 0
		}},
		{"bw_peak_kbps", 1900, func(_ int, prev []int32, r *rand.Rand) int32 {
			bw := bwZ()
			// Wired connections see systematically higher bandwidth.
			if prev[cConn] >= 2 {
				bw = jitter(bw+600, 100, 1900, r)
			}
			return bw
		}},
		{"bw_avg_kbps", 1900, func(_ int, prev []int32, r *rand.Rand) int32 {
			// Average is a noisy fraction of peak — never above it.
			frac := 0.4 + 0.5*r.Float64()
			avg := int32(float64(prev[cBwPeak]) * frac)
			return jitter(avg, 20, int(prev[cBwPeak])+1, r)
		}},
		{"bitrate_kbps", 1200, func(_ int, prev []int32, r *rand.Rand) int32 {
			// Player picks a bitrate ladder rung below average bandwidth.
			rung := prev[cBwAvg] / 2
			if rung >= 1200 {
				rung = 1199
			}
			return jitter(rung, 30, 1200, r)
		}},
		{"buffering_count", 50, func(_ int, prev []int32, r *rand.Rand) int32 {
			// Low bandwidth and errors drive rebuffering.
			base := int32(0)
			if prev[cBwAvg] < 200 {
				base = int32(10 + r.Intn(30))
			} else if prev[cBwAvg] < 600 {
				base = int32(r.Intn(10))
			} else {
				base = int32(r.Intn(3))
			}
			if prev[cErrFlag] == 1 {
				base += int32(r.Intn(15))
			}
			if base >= 50 {
				base = 49
			}
			return base
		}},
		{"buffering_sec", 600, func(_ int, prev []int32, r *rand.Rand) int32 {
			sec := int(prev[cBufCnt]) * (2 + r.Intn(10))
			if sec >= 600 {
				sec = 599
			}
			return int32(sec)
		}},
		{"join_time_ms", 1500, func(_ int, prev []int32, r *rand.Rand) int32 {
			if prev[cJoinFail] == 1 {
				return 1499 // timeout sentinel
			}
			base := 1200 - prev[cBwAvg]/2
			if base < 20 {
				base = 20
			}
			return jitter(base, 150, 1500, r)
		}},
		{"play_minutes", 720, func(_ int, prev []int32, r *rand.Rand) int32 {
			if prev[cJoinFail] == 1 {
				return 0
			}
			// Engagement drops with rebuffering.
			mean := 200 - int(prev[cBufCnt])*3
			if mean < 5 {
				mean = 5
			}
			v := int(r.ExpFloat64() * float64(mean))
			if v >= 720 {
				v = 719
			}
			return int32(v)
		}},
	}
	return generate("conviva_a", specs, n, seed)
}

// ConvivaBRows and ConvivaBCols match the original exactly: the paper's
// Conviva-B is deliberately tiny (10K rows) so an emulated oracle model can
// be computed by scanning (§6.7).
const (
	ConvivaBRows = 10_000
	ConvivaBCols = 100
)

// ConvivaB generates a synthetic analogue of Conviva-B: 10K rows × 100
// columns with per-column domains from 2 to 10K, arranged in correlated
// blocks of 10 columns each driven by a shared latent, for a joint space
// above 10^190.
func ConvivaB(seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]colSpec, 0, ConvivaBCols)
	// Domains cycle through a spread of sizes; each block of 10 columns
	// shares a latent driver (its first column).
	domainCycle := []int{2, 4, 10, 25, 60, 150, 400, 1000, 4000, 10000}
	for b := 0; b < 10; b++ {
		block := b
		for j := 0; j < 10; j++ {
			idx := b*10 + j
			domain := domainCycle[(b+j)%len(domainCycle)]
			name := fmt.Sprintf("c%02d", idx)
			if j == 0 {
				z := zipf(rng, 1.4, domain, seed+int64(100+idx))
				specs = append(specs, colSpec{name, domain, func(_ int, _ []int32, _ *rand.Rand) int32 {
					return z()
				}})
				continue
			}
			jj := j
			specs = append(specs, colSpec{name, domain, func(_ int, prev []int32, r *rand.Rand) int32 {
				driver := prev[block*10] // block latent
				spread := 1 + domain/20
				if jj%3 == 0 {
					// Every third column also couples to the previous
					// block, chaining correlations across blocks.
					if block > 0 {
						driver += prev[(block-1)*10]
					}
				}
				return derive(driver, 0, domain, spread, r)
			}})
		}
	}
	return generate("conviva_b", specs, ConvivaBRows, seed)
}
