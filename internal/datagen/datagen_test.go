package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
)

func TestDMVShape(t *testing.T) {
	tbl := DMV(5000, 1)
	if tbl.NumRows() != 5000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	wantDomains := []int{4, 75, 89, 63, 59, 9, 2101, 225, 2, 2, 2}
	got := tbl.DomainSizes()
	for i, d := range wantDomains {
		if got[i] != d {
			t.Fatalf("column %d domain = %d, want %d", i, got[i], d)
		}
	}
	// Paper: exact joint size 3.4×10^15.
	if js := tbl.JointSize(); js < 3e15 || js > 4e15 {
		t.Fatalf("joint size = %g", js)
	}
}

func TestDMVDeterministic(t *testing.T) {
	a, b := DMV(500, 7), DMV(500, 7)
	for c := range a.Cols {
		for r := 0; r < 500; r++ {
			if a.Cols[c].Codes[r] != b.Cols[c].Codes[r] {
				t.Fatalf("row %d col %d differs across same-seed runs", r, c)
			}
		}
	}
	c := DMV(500, 8)
	same := true
	for r := 0; r < 500 && same; r++ {
		same = a.Cols[6].Codes[r] == c.Cols[6].Codes[r]
	}
	if same {
		t.Fatal("different seeds produced identical valid_date column")
	}
}

func TestDMVCorrelations(t *testing.T) {
	tbl := DMV(20000, 1)
	// The flags must be rare overall but much more common on old dates.
	sus := tbl.ColumnIndex("sus_ind")
	date := tbl.ColumnIndex("valid_date")
	var oldSus, oldN, newSus, newN float64
	for r := 0; r < tbl.NumRows(); r++ {
		isOld := tbl.Cols[date].Codes[r] < 700
		flag := float64(tbl.Cols[sus].Codes[r])
		if isOld {
			oldSus += flag
			oldN++
		} else {
			newSus += flag
			newN++
		}
	}
	if oldN == 0 || newN == 0 {
		t.Skip("date split degenerate for this seed")
	}
	if oldSus/oldN <= newSus/newN {
		t.Fatalf("sus_ind not correlated with old dates: old=%.4f new=%.4f",
			oldSus/oldN, newSus/newN)
	}
}

// mutualInformationProxy measures dependence between two columns via the
// G-test statistic normalized per row; independent columns give ~0.
func mutualInformationProxy(codesA, codesB []int32, domA, domB int) float64 {
	n := float64(len(codesA))
	joint := make(map[[2]int32]float64)
	ma := make([]float64, domA)
	mb := make([]float64, domB)
	for i := range codesA {
		joint[[2]int32{codesA[i], codesB[i]}]++
		ma[codesA[i]]++
		mb[codesB[i]]++
	}
	var mi float64
	for k, c := range joint {
		pxy := c / n
		px, py := ma[k[0]]/n, mb[k[1]]/n
		mi += pxy * math.Log(pxy/(px*py))
	}
	return mi
}

func TestDMVBodyTypeDependsOnRegClass(t *testing.T) {
	tbl := DMV(30000, 1)
	mi := mutualInformationProxy(tbl.Cols[1].Codes, tbl.Cols[4].Codes, 75, 59)
	if mi < 0.5 {
		t.Fatalf("body_type/reg_class mutual information %.3f too low; correlation machinery broken", mi)
	}
	// Sanity floor: two independent columns should be near zero.
	rng := rand.New(rand.NewSource(9))
	a := make([]int32, 30000)
	b := make([]int32, 30000)
	for i := range a {
		a[i], b[i] = int32(rng.Intn(75)), int32(rng.Intn(59))
	}
	if bg := mutualInformationProxy(a, b, 75, 59); bg > 0.2 {
		t.Fatalf("independence baseline MI %.3f unexpectedly high", bg)
	}
}

func TestConvivaAShape(t *testing.T) {
	tbl := ConvivaA(5000, 1)
	if tbl.NumRows() != 5000 || tbl.NumCols() != 15 {
		t.Fatalf("%d×%d", tbl.NumRows(), tbl.NumCols())
	}
	// Joint size should be enormous (paper: ~10^23).
	if js := tbl.JointSize(); js < 1e20 {
		t.Fatalf("joint size = %g, want ≥1e20", js)
	}
	// Domain range 2–1.9K like the paper.
	doms := tbl.DomainSizes()
	minD, maxD := doms[0], doms[0]
	for _, d := range doms {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD != 2 || maxD != 1900 {
		t.Fatalf("domain range [%d,%d], want [2,1900]", minD, maxD)
	}
}

func TestConvivaAInvariantAvgLEPeak(t *testing.T) {
	tbl := ConvivaA(8000, 2)
	peak := tbl.ColumnIndex("bw_peak_kbps")
	avg := tbl.ColumnIndex("bw_avg_kbps")
	for r := 0; r < tbl.NumRows(); r++ {
		if tbl.Cols[avg].Codes[r] > tbl.Cols[peak].Codes[r] {
			t.Fatalf("row %d: avg bandwidth %d above peak %d",
				r, tbl.Cols[avg].Codes[r], tbl.Cols[peak].Codes[r])
		}
	}
}

func TestConvivaAJoinFailZeroPlay(t *testing.T) {
	tbl := ConvivaA(8000, 3)
	jf := tbl.ColumnIndex("join_failed")
	pm := tbl.ColumnIndex("play_minutes")
	for r := 0; r < tbl.NumRows(); r++ {
		if tbl.Cols[jf].Codes[r] == 1 && tbl.Cols[pm].Codes[r] != 0 {
			t.Fatalf("row %d: failed join but %d play minutes", r, tbl.Cols[pm].Codes[r])
		}
	}
}

func TestConvivaBShape(t *testing.T) {
	tbl := ConvivaB(1)
	if tbl.NumRows() != 10000 || tbl.NumCols() != 100 {
		t.Fatalf("%d×%d", tbl.NumRows(), tbl.NumCols())
	}
	// Joint space over 10^190 (paper Table 1).
	var logJoint float64
	for _, d := range tbl.DomainSizes() {
		logJoint += math.Log10(float64(d))
	}
	if logJoint < 190 {
		t.Fatalf("log10 joint = %.1f, want ≥190", logJoint)
	}
}

func TestConvivaBBlockCorrelation(t *testing.T) {
	tbl := ConvivaB(1)
	// Columns within a block correlate with the block driver.
	mi := mutualInformationProxy(tbl.Cols[10].Codes, tbl.Cols[11].Codes,
		tbl.Cols[10].DomainSize(), tbl.Cols[11].DomainSize())
	if mi < 0.3 {
		t.Fatalf("within-block MI %.3f too low", mi)
	}
}

func TestWorkloadSelectivitySpread(t *testing.T) {
	// The §6.1.3 generator over synthetic DMV must produce the wide
	// selectivity spectrum of Figure 4: some high (>2%), some low (≤0.5%).
	tbl := DMV(30000, 1)
	w, err := query.GenerateWorkload(tbl, query.DefaultGeneratorConfig(), 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	var high, low, zero int
	for i := range w.Queries {
		s := w.TrueSelectivity(i)
		switch {
		case s > 0.02:
			high++
		case s <= 0.005:
			low++
		}
		if w.TrueCard[i] == 0 {
			zero++
		}
	}
	if high == 0 || low == 0 {
		t.Fatalf("selectivity spectrum collapsed: high=%d low=%d of 200", high, low)
	}
	if zero == 200 {
		t.Fatal("every in-distribution query is empty; generator broken")
	}
}

func TestJitterClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := jitter(int32(rng.Intn(100)), 50, 100, rng)
		if v < 0 || v >= 100 {
			t.Fatalf("jitter out of range: %d", v)
		}
	}
	if v := jitter(0, 0, 10, rng); v != 0 {
		t.Fatalf("zero-spread jitter moved: %d", v)
	}
}

func TestDeriveDeterministicBase(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := derive(13, 0, 59, 0, rng)
	b := derive(13, 0, 59, 0, rng)
	if a != b {
		t.Fatalf("zero-spread derive not deterministic: %d vs %d", a, b)
	}
	if a < 0 || a >= 59 {
		t.Fatalf("derive out of range: %d", a)
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := zipf(rng, 2.0, 100, 42)
	counts := make(map[int32]int)
	for i := 0; i < 10000; i++ {
		counts[z()]++
	}
	// Top value should hold a large share under s=2.
	var maxC int
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 4000 {
		t.Fatalf("zipf(2.0) top mass %d/10000; not skewed enough", maxC)
	}
	if len(counts) < 5 {
		t.Fatalf("zipf support %d too small", len(counts))
	}
}
