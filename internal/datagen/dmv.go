package datagen

import (
	"math/rand"

	"repro/internal/table"
)

// DMVDefaultRows is the default row count for the synthetic DMV table. The
// original has 11,591,878 rows; the default is scaled down so the full
// pipeline (training plus 2,000-query workloads for several estimators) runs
// on CPUs in minutes. Pass a larger n to approach paper scale.
const DMVDefaultRows = 300_000

// DMV generates a synthetic analogue of the paper's DMV dataset: New York
// vehicle-registration records with 11 columns whose domain sizes match the
// paper exactly (record_type 4, reg_class 75, state 89, county 63, body_type
// 59, fuel_type 9, valid_date 2101, color 225, sco_ind 2, sus_ind 2,
// rev_ind 2; joint size 3.4×10^15).
//
// The correlation structure mimics the real registry:
//   - state is extremely skewed (in-state registrations dominate), and
//     county only carries information for the dominant state;
//   - body_type is a noisy function of reg_class, and fuel_type of body_type
//     (commercial classes are trucks are diesel, and so on);
//   - valid_date clusters by record type with a recency skew;
//   - the three indicator flags are rare and correlated with old valid_dates.
func DMV(n int, seed int64) *table.Table {
	if n <= 0 {
		n = DMVDefaultRows
	}
	rng := rand.New(rand.NewSource(seed))
	recordZ := zipf(rng, 1.8, 4, seed+1)
	classZ := zipf(rng, 1.3, 75, seed+2)
	stateZ := zipf(rng, 2.8, 89, seed+3)
	countyZ := zipf(rng, 1.2, 63, seed+4)
	colorZ := zipf(rng, 1.6, 225, seed+5)
	dateZ := zipf(rng, 1.15, 700, seed+6) // recency cluster offsets
	stateDominant := modalCode(89, seed+3)

	const (
		cRecord = iota
		cClass
		cState
		cCounty
		cBody
		cFuel
		cDate
		cColor
		cSco
		cSus
		cRev
	)
	specs := []colSpec{
		{"record_type", 4, func(_ int, _ []int32, _ *rand.Rand) int32 { return recordZ() }},
		{"reg_class", 75, func(_ int, prev []int32, r *rand.Rand) int32 {
			// Record type gates which registration classes are plausible.
			base := classZ()
			return int32((int(base) + int(prev[cRecord])*19) % 75)
		}},
		{"state", 89, func(_ int, _ []int32, _ *rand.Rand) int32 { return stateZ() }},
		{"county", 63, func(_ int, prev []int32, r *rand.Rand) int32 {
			if prev[cState] == stateDominant {
				return countyZ() // in-state: real county distribution
			}
			// Out-of-state registrations concentrate in a handful of
			// border/administrative counties.
			return int32(r.Intn(3))
		}},
		{"body_type", 59, func(_ int, prev []int32, r *rand.Rand) int32 {
			return derive(prev[cClass], 75, 59, 2, r)
		}},
		{"fuel_type", 9, func(_ int, prev []int32, r *rand.Rand) int32 {
			if r.Float64() < 0.9 {
				return derive(prev[cBody], 59, 9, 0, r)
			}
			return int32(r.Intn(9))
		}},
		{"valid_date", 2101, func(_ int, prev []int32, r *rand.Rand) int32 {
			// Dates cluster by record type (renewal cycles) with recency
			// skew: most registrations are recent.
			base := 2100 - int32(dateZ())
			base -= prev[cRecord] * 97
			return jitter(base, 45, 2101, r)
		}},
		{"color", 225, func(_ int, prev []int32, r *rand.Rand) int32 {
			if r.Float64() < 0.25 {
				// Fleet vehicles: color follows body type.
				return derive(prev[cBody], 59, 225, 4, r)
			}
			return colorZ()
		}},
		{"sco_ind", 2, func(_ int, prev []int32, r *rand.Rand) int32 {
			return flagFromDate(prev[cDate], 0.004, 0.05, r)
		}},
		{"sus_ind", 2, func(_ int, prev []int32, r *rand.Rand) int32 {
			p := 0.01
			if prev[cSco] == 1 {
				p = 0.5 // suspensions co-occur with stolen/check flags
			}
			return flagFromDate(prev[cDate], p, 0.15, r)
		}},
		{"rev_ind", 2, func(_ int, prev []int32, r *rand.Rand) int32 {
			p := 0.002
			if prev[cSus] == 1 {
				p = 0.3
			}
			return flagFromDate(prev[cDate], p, 0.08, r)
		}},
	}
	return generate("dmv", specs, n, seed)
}

// modalCode returns the most frequent output of a zipf sampler built with the
// given permutation seed: Zipf rank 0 is the most likely rank, and the
// permutation maps it to perm[0]. DMV uses it to locate the "in-state" state
// code, which the county column conditions on.
func modalCode(n int, permSeed int64) int32 {
	return int32(rand.New(rand.NewSource(permSeed)).Perm(n)[0])
}

// flagFromDate returns 1 with probability pBase for recent dates, rising to
// pOld for the oldest dates — the mechanism that correlates the DMV indicator
// flags with valid_date.
func flagFromDate(date int32, pBase, pOld float64, r *rand.Rand) int32 {
	age := float64(2100-date) / 2100 // 0 = newest, 1 = oldest
	p := pBase + (pOld-pBase)*age*age
	if r.Float64() < p {
		return 1
	}
	return 0
}
