package estimator

import (
	"repro/internal/query"
	"repro/internal/table"
)

// Postgres emulates the estimation a practitioner gets from PostgreSQL: a
// per-column MCV list and equi-depth histogram (ANALYZE with a high
// statistics target — the paper tunes Postgres to its maximum of 10,000
// bins), combined across columns under the attribute-value-independence
// assumption.
type Postgres struct {
	stats []*colStats
	name  string
}

// NewPostgres builds per-column statistics with the given MCV-list length
// and histogram bucket count per column (the paper's tuned setting is
// effectively 100 MCVs / 10,000 buckets; both are capped by the domain).
func NewPostgres(t *table.Table, mcvLimit, histBuckets int) *Postgres {
	if mcvLimit <= 0 {
		mcvLimit = 100
	}
	if histBuckets <= 0 {
		histBuckets = 10000
	}
	p := &Postgres{name: "Postgres", stats: make([]*colStats, t.NumCols())}
	for c, col := range t.Cols {
		p.stats[c] = buildColStats(col, t.NumRows(), mcvLimit, histBuckets)
	}
	return p
}

// Name implements Interface.
func (p *Postgres) Name() string { return p.name }

// SizeBytes totals the per-column summaries.
func (p *Postgres) SizeBytes() int64 {
	var n int64
	for _, s := range p.stats {
		n += s.sizeBytes()
	}
	return n
}

// EstimateRegion multiplies per-column 1D estimates (independence).
func (p *Postgres) EstimateRegion(reg *query.Region) float64 {
	sel := 1.0
	for i := range reg.Cols {
		cr := &reg.Cols[i]
		if cr.IsAll() {
			continue
		}
		if cr.Count == 1 {
			sel *= p.stats[i].equalitySelectivity(cr.Lo)
		} else {
			sel *= p.stats[i].selectivity(cr)
		}
		if sel == 0 {
			return 0
		}
	}
	return sel
}
