package estimator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/table"
)

// buildColumn creates a single-column table from explicit codes.
func buildColumn(t *testing.T, domain int, codes []int32) *table.Column {
	t.Helper()
	tbl, err := table.FromCodes("one", []string{"v"}, []int{domain}, [][]int32{codes})
	if err != nil {
		t.Fatal(err)
	}
	return tbl.Cols[0]
}

func crFor(t *testing.T, domain int, pred query.Predicate) *query.ColumnRange {
	t.Helper()
	reg, err := query.CompileDomains(query.Query{Preds: []query.Predicate{pred}}, []int{domain})
	if err != nil {
		t.Fatal(err)
	}
	return &reg.Cols[0]
}

func TestColStatsMCVExact(t *testing.T) {
	// Value 0 dominates; with 2 MCV slots its frequency must be exact.
	codes := make([]int32, 1000)
	for i := 400; i < 700; i++ {
		codes[i] = 1
	}
	for i := 700; i < 1000; i++ {
		codes[i] = int32(2 + i%8)
	}
	col := buildColumn(t, 10, codes)
	s := buildColStats(col, 1000, 2, 4)
	if got := s.equalitySelectivity(0); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("MCV freq of 0 = %v, want 0.4", got)
	}
	if got := s.equalitySelectivity(1); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MCV freq of 1 = %v, want 0.3", got)
	}
	// Non-MCV equality: rest mass spread over rest distincts.
	got := s.equalitySelectivity(5)
	want := 0.3 / float64(s.restDistinct)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("non-MCV equality = %v, want %v", got, want)
	}
}

func TestColStatsHistogramRange(t *testing.T) {
	// Uniform over 200 values, no MCV dominance: range selectivity should
	// track the true fraction closely.
	rng := rand.New(rand.NewSource(1))
	codes := make([]int32, 20000)
	for i := range codes {
		codes[i] = int32(rng.Intn(200))
	}
	col := buildColumn(t, 200, codes)
	s := buildColStats(col, 20000, 5, 50)
	cr := crFor(t, 200, query.Predicate{Col: 0, Op: query.OpLe, Code: 49})
	got := s.selectivity(cr)
	if math.Abs(got-0.25) > 0.05 {
		t.Fatalf("range sel = %v, want ≈0.25", got)
	}
}

func TestColStatsWildcardAndEmpty(t *testing.T) {
	codes := []int32{0, 1, 2, 3}
	col := buildColumn(t, 4, codes)
	s := buildColStats(col, 4, 2, 2)
	all := crFor(t, 4, query.Predicate{Col: 0, Op: query.OpGe, Code: 0})
	if got := s.selectivity(all); got != 1 {
		t.Fatalf("wildcard-equivalent sel = %v", got)
	}
	reg, err := query.CompileDomains(query.Query{Preds: []query.Predicate{
		{Col: 0, Op: query.OpLt, Code: 2}, {Col: 0, Op: query.OpGt, Code: 2}}}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.selectivity(&reg.Cols[0]); got != 0 {
		t.Fatalf("empty range sel = %v", got)
	}
}

func TestColStatsSelectivitySumsToOne(t *testing.T) {
	// Σ over all codes of equalitySelectivity ≈ 1 when every present value
	// is either an MCV or in the rest pool.
	rng := rand.New(rand.NewSource(2))
	codes := make([]int32, 5000)
	for i := range codes {
		codes[i] = int32(rng.Intn(50))
	}
	col := buildColumn(t, 50, codes)
	s := buildColStats(col, 5000, 10, 8)
	var sum float64
	for v := int32(0); v < 50; v++ {
		sum += s.equalitySelectivity(v)
	}
	if math.Abs(sum-1) > 0.02 {
		t.Fatalf("equality selectivities sum to %v", sum)
	}
}

func TestColStatsFewDistinct(t *testing.T) {
	// Fewer distinct values than MCV slots: everything is an MCV, and the
	// histogram is empty.
	codes := []int32{0, 0, 1, 1, 1, 1}
	col := buildColumn(t, 2, codes)
	s := buildColStats(col, 6, 100, 50)
	if len(s.bounds) != 0 {
		t.Fatal("histogram should be empty when MCVs cover everything")
	}
	if got := s.equalitySelectivity(1); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("sel(1) = %v", got)
	}
	if got := s.equalitySelectivity(0); math.Abs(got-2.0/6) > 1e-12 {
		t.Fatalf("sel(0) = %v", got)
	}
}

// Property: selectivity is always within [0, 1] and monotone under widening.
func TestQuickColStatsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := rand.NewZipf(rng, 1.5, 1, 99)
	codes := make([]int32, 3000)
	for i := range codes {
		codes[i] = int32(z.Uint64())
	}
	col := buildColumn(t, 100, codes)
	s := buildColStats(col, 3000, 8, 16)
	f := func(aRaw, bRaw uint8) bool {
		a, b := int32(aRaw%100), int32(bRaw%100)
		if a > b {
			a, b = b, a
		}
		narrow := crFor(t, 100, query.Predicate{Col: 0, Op: query.OpBetween, Code: a, Code2: b})
		wide := crFor(t, 100, query.Predicate{Col: 0, Op: query.OpBetween, Code: 0, Code2: 99})
		sn, sw := s.selectivity(narrow), s.selectivity(wide)
		return sn >= 0 && sn <= 1 && sw >= sn-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
