package estimator

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/query"
	"repro/internal/table"
)

// KDE is the kernel-density baseline (Heimel et al. [19], Kiefer et al.
// [21]): a product of per-dimension Gaussian kernels centered on a uniform
// sample of rows, evaluated over query rectangles in code space. Kernels are
// renormalized to the finite domain so a wildcard dimension integrates to
// exactly 1.
//
// The unsupervised variant ("KDE" in Table 2) sets bandwidths with Scott's
// rule; TuneBandwidths implements the query-feedback optimization that
// produces the paper's "KDE-superv" variant.
type KDE struct {
	points [][]int32 // sample rows in code space
	bw     []float64 // per-dimension bandwidths
	doms   []int
	name   string
}

// NewKDE samples numPoints rows and applies Scott's rule:
// h_d = σ_d · m^(−1/(d+4)).
func NewKDE(t *table.Table, numPoints int, seed int64) *KDE {
	if numPoints <= 0 {
		panic("estimator: KDE needs a positive sample size")
	}
	rng := rand.New(rand.NewSource(seed))
	n := t.NumRows()
	if numPoints > n {
		numPoints = n
	}
	pick := rng.Perm(n)[:numPoints]
	k := &KDE{
		points: make([][]int32, numPoints),
		doms:   t.DomainSizes(),
		name:   "KDE",
	}
	for i, r := range pick {
		row := make([]int32, t.NumCols())
		t.Row(r, row)
		k.points[i] = row
	}
	d := t.NumCols()
	factor := math.Pow(float64(numPoints), -1.0/float64(d+4))
	k.bw = make([]float64, d)
	for c := 0; c < d; c++ {
		k.bw[c] = math.Max(stddev(k.points, c)*factor, 0.3)
	}
	return k
}

func stddev(points [][]int32, col int) float64 {
	var sum, sq float64
	for _, p := range points {
		v := float64(p[col])
		sum += v
		sq += v * v
	}
	n := float64(len(points))
	mean := sum / n
	v := sq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Name implements Interface.
func (k *KDE) Name() string { return k.name }

// SizeBytes counts the stored sample points and bandwidths.
func (k *KDE) SizeBytes() int64 {
	return int64(len(k.points))*int64(len(k.doms))*4 + int64(len(k.bw))*8
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

// EstimateRegion averages, over sample points, the product of per-dimension
// kernel masses inside the region's valid runs.
func (k *KDE) EstimateRegion(reg *query.Region) float64 {
	if reg.IsEmpty() {
		return 0
	}
	type run struct{ a, b float64 } // inclusive code interval
	nc := len(k.doms)
	runs := make([][]run, nc)
	for c := 0; c < nc; c++ {
		cr := &reg.Cols[c]
		if cr.IsAll() {
			continue // contributes factor 1 after renormalization
		}
		var rs []run
		inRun := false
		var start int
		for v := int(cr.Lo); v < int(cr.Hi); v++ {
			if cr.Valid[v] && !inRun {
				inRun, start = true, v
			}
			if !cr.Valid[v] && inRun {
				rs = append(rs, run{float64(start) - 0.5, float64(v) - 0.5})
				inRun = false
			}
		}
		if inRun {
			rs = append(rs, run{float64(start) - 0.5, float64(cr.Hi) - 0.5})
		}
		runs[c] = rs
	}
	var total float64
	for _, p := range k.points {
		contrib := 1.0
		for c := 0; c < nc; c++ {
			if runs[c] == nil {
				continue
			}
			x, h := float64(p[c]), k.bw[c]
			full := normCDF((float64(k.doms[c])-0.5-x)/h) - normCDF((-0.5-x)/h)
			if full <= 0 {
				contrib = 0
				break
			}
			var mass float64
			for _, r := range runs[c] {
				mass += normCDF((r.b-x)/h) - normCDF((r.a-x)/h)
			}
			contrib *= mass / full
			if contrib == 0 {
				break
			}
		}
		total += contrib
	}
	return clamp01(total / float64(len(k.points)))
}

// TuneBandwidths performs the query-feedback optimization of KDE-superv:
// coordinate descent over per-dimension bandwidth multipliers, minimizing
// the mean squared log q-error on a training workload with known true
// selectivities. It renames the estimator to "KDE-superv".
func (k *KDE) TuneBandwidths(regions []*query.Region, trueSel []float64, rounds int) {
	if len(regions) != len(trueSel) {
		panic(fmt.Sprintf("estimator: %d regions vs %d labels", len(regions), len(trueSel)))
	}
	if rounds <= 0 {
		rounds = 2
	}
	k.name = "KDE-superv"
	loss := func() float64 {
		var s float64
		for i, reg := range regions {
			est := math.Max(k.EstimateRegion(reg), 1e-9)
			truth := math.Max(trueSel[i], 1e-9)
			d := math.Log(est) - math.Log(truth)
			s += d * d
		}
		return s
	}
	grid := []float64{0.25, 0.5, 2, 4}
	cur := loss()
	for round := 0; round < rounds; round++ {
		for c := range k.bw {
			orig := k.bw[c]
			best, bestLoss := orig, cur
			for _, g := range grid {
				k.bw[c] = math.Max(orig*g, 0.05)
				if l := loss(); l < bestLoss {
					best, bestLoss = k.bw[c], l
				}
			}
			k.bw[c] = best
			cur = bestLoss
		}
	}
}
