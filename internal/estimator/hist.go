package estimator

import (
	"repro/internal/query"
	"repro/internal/table"
)

// Hist is the N-dimensional histogram of Table 2: the joint is gridded into
// equal-width buckets per dimension and a dense count array is materialized.
// Per-column bucket counts are chosen as large as the storage budget permits
// (the paper: "We increase per-column bin sizes as much as possible...
// otherwise it achieves perfect accuracy given unlimited space").
type Hist struct {
	buckets []int // buckets per column
	width   []int // codes per bucket (ceil(domain/buckets))
	counts  []float64
	strides []int
	rows    float64
}

// NewHist grids the table into at most budgetBytes of float64 cells, growing
// every column's bucket count in round-robin until the budget is exhausted.
func NewHist(t *table.Table, budgetBytes int64) *Hist {
	nc := t.NumCols()
	doms := t.DomainSizes()
	buckets := make([]int, nc)
	for i := range buckets {
		buckets[i] = 1
	}
	cells := func() int64 {
		p := int64(1)
		for _, b := range buckets {
			p *= int64(b)
			if p > 1<<40 {
				return p
			}
		}
		return p
	}
	// Grow greedily: double the column whose bucket count is furthest below
	// its domain, while the cell array still fits.
	for {
		best := -1
		for i := range buckets {
			if buckets[i] >= doms[i] {
				continue
			}
			if best == -1 || float64(buckets[i])/float64(doms[i]) < float64(buckets[best])/float64(doms[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		old := buckets[best]
		buckets[best] = min(old*2, doms[best])
		if cells()*8 > budgetBytes {
			buckets[best] = old
			break
		}
	}
	h := &Hist{buckets: buckets, rows: float64(t.NumRows())}
	h.width = make([]int, nc)
	for i := range h.width {
		h.width[i] = (doms[i] + buckets[i] - 1) / buckets[i]
	}
	h.strides = make([]int, nc)
	stride := 1
	for i := nc - 1; i >= 0; i-- {
		h.strides[i] = stride
		stride *= buckets[i]
	}
	h.counts = make([]float64, stride)
	for r := 0; r < t.NumRows(); r++ {
		idx := 0
		for c := 0; c < nc; c++ {
			idx += (int(t.Cols[c].Codes[r]) / h.width[c]) * h.strides[c]
		}
		h.counts[idx]++
	}
	return h
}

// Name implements Interface.
func (h *Hist) Name() string { return "Hist" }

// SizeBytes counts the dense cell array.
func (h *Hist) SizeBytes() int64 { return int64(len(h.counts))*8 + int64(len(h.buckets))*16 }

// EstimateRegion sums bucket masses scaled by the per-dimension overlap
// fraction of the query region with each bucket (uniform spread within
// buckets — the classical histogram assumption).
func (h *Hist) EstimateRegion(reg *query.Region) float64 {
	nc := len(h.buckets)
	// Per column, per bucket: fraction of the bucket's codes that are valid.
	overlap := make([][]float64, nc)
	for c := 0; c < nc; c++ {
		cr := &reg.Cols[c]
		ov := make([]float64, h.buckets[c])
		d := len(cr.Valid)
		for b := 0; b < h.buckets[c]; b++ {
			lo := b * h.width[c]
			hi := min(lo+h.width[c], d)
			if lo >= d {
				break
			}
			if cr.IsAll() {
				ov[b] = 1
				continue
			}
			var hit int
			for v := lo; v < hi; v++ {
				if cr.Valid[v] {
					hit++
				}
			}
			ov[b] = float64(hit) / float64(hi-lo)
		}
		overlap[c] = ov
	}
	// Walk all cells with an odometer, accumulating count × Πoverlap.
	idx := make([]int, nc)
	var total float64
	for {
		frac := 1.0
		for c := 0; c < nc; c++ {
			frac *= overlap[c][idx[c]]
			if frac == 0 {
				break
			}
		}
		if frac > 0 {
			cell := 0
			for c := 0; c < nc; c++ {
				cell += idx[c] * h.strides[c]
			}
			total += h.counts[cell] * frac
		}
		k := nc - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < h.buckets[k] {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return clamp01(total / h.rows)
}
