package estimator

import (
	"sort"

	"repro/internal/query"
	"repro/internal/table"
)

// colStats is the classical single-column summary real systems keep: a
// most-common-values (MCV) list with exact frequencies, an equi-depth
// histogram over the remaining values, and the column's distinct count.
// It is shared by the Postgres-style and DBMS-1-style estimators.
type colStats struct {
	domain    int
	nDistinct int

	mcvCode []int32
	mcvFreq []float64 // fraction of rows

	// Equi-depth histogram over non-MCV rows: bounds are bucket upper
	// edges in code space (inclusive); each bucket holds bucketFrac of the
	// non-MCV row mass. restFrac is the total non-MCV fraction and
	// restDistinct the non-MCV distinct count.
	bounds       []int32
	bucketFrac   float64
	restFrac     float64
	restDistinct int
}

// buildColStats summarizes one column with at most mcvLimit MCV entries and
// histBuckets equi-depth buckets.
func buildColStats(col *table.Column, rows int, mcvLimit, histBuckets int) *colStats {
	d := col.DomainSize()
	counts := make([]int64, d)
	for _, code := range col.Codes {
		counts[code]++
	}
	type vc struct {
		code int32
		n    int64
	}
	present := make([]vc, 0, d)
	for code, n := range counts {
		if n > 0 {
			present = append(present, vc{int32(code), n})
		}
	}
	s := &colStats{domain: d, nDistinct: len(present)}
	// MCVs: highest counts first (ties by code for determinism).
	sort.Slice(present, func(i, j int) bool {
		if present[i].n != present[j].n {
			return present[i].n > present[j].n
		}
		return present[i].code < present[j].code
	})
	k := mcvLimit
	if k > len(present) {
		k = len(present)
	}
	total := float64(rows)
	for _, p := range present[:k] {
		s.mcvCode = append(s.mcvCode, p.code)
		s.mcvFreq = append(s.mcvFreq, float64(p.n)/total)
	}
	rest := present[k:]
	s.restDistinct = len(rest)
	var restRows int64
	for _, p := range rest {
		restRows += p.n
	}
	s.restFrac = float64(restRows) / total
	if len(rest) == 0 || histBuckets <= 0 || restRows == 0 {
		return s
	}
	// Equi-depth: walk rest values in code order, cutting when cumulative
	// count passes each depth threshold.
	sort.Slice(rest, func(i, j int) bool { return rest[i].code < rest[j].code })
	if histBuckets > len(rest) {
		histBuckets = len(rest)
	}
	depth := float64(restRows) / float64(histBuckets)
	var cum float64
	next := depth
	for _, p := range rest {
		cum += float64(p.n)
		if cum >= next {
			s.bounds = append(s.bounds, p.code)
			for cum >= next {
				next += depth
			}
		}
	}
	if len(s.bounds) == 0 || s.bounds[len(s.bounds)-1] != rest[len(rest)-1].code {
		s.bounds = append(s.bounds, rest[len(rest)-1].code)
	}
	s.bucketFrac = s.restFrac / float64(len(s.bounds))
	return s
}

// sizeBytes reports the summary footprint: 4 bytes per MCV code and bound,
// 8 per MCV frequency, plus fixed fields.
func (s *colStats) sizeBytes() int64 {
	return int64(len(s.mcvCode))*4 + int64(len(s.mcvFreq))*8 + int64(len(s.bounds))*4 + 32
}

// selectivity estimates the fraction of rows whose column value lies in the
// range, using MCV hits plus uniform-within-bucket histogram interpolation —
// the classical single-column estimation formula.
func (s *colStats) selectivity(cr *query.ColumnRange) float64 {
	if cr.IsAll() {
		return 1
	}
	if cr.IsEmpty() {
		return 0
	}
	var sel float64
	for i, code := range s.mcvCode {
		if cr.Valid[code] {
			sel += s.mcvFreq[i]
		}
	}
	if len(s.bounds) == 0 {
		if s.restDistinct > 0 {
			// No histogram: assume uniform across the non-MCV distincts.
			sel += s.restFrac * float64(countValidNonMCV(cr, s.mcvCode)) / float64(s.restDistinct)
		}
		return clamp01(sel)
	}
	// Histogram walk over contiguous valid runs: each bucket spans codes
	// (prevBound, bound]; within a bucket assume uniform spread over codes.
	prev := int32(-1)
	for bi, bound := range s.bounds {
		_ = bi
		lo, hi := prev+1, bound // inclusive code span of this bucket
		prev = bound
		width := float64(hi-lo) + 1
		if width <= 0 {
			continue
		}
		// Overlap of the valid set with [lo, hi].
		a, b := lo, hi
		if a < cr.Lo {
			a = cr.Lo
		}
		if b >= cr.Hi {
			b = cr.Hi - 1
		}
		if a > b {
			continue
		}
		var overlap float64
		for v := a; v <= b; v++ {
			if cr.Valid[v] {
				overlap++
			}
		}
		sel += s.bucketFrac * overlap / width
	}
	return clamp01(sel)
}

// equalitySelectivity is the classical point formula: MCV frequency if
// listed, otherwise the non-MCV mass spread evenly over non-MCV distincts.
func (s *colStats) equalitySelectivity(code int32) float64 {
	for i, c := range s.mcvCode {
		if c == code {
			return s.mcvFreq[i]
		}
	}
	if s.restDistinct == 0 {
		return 0
	}
	return s.restFrac / float64(s.restDistinct)
}

func countValidNonMCV(cr *query.ColumnRange, mcv []int32) int {
	n := cr.Count
	for _, code := range mcv {
		if cr.Valid[code] {
			n--
		}
	}
	return n
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
