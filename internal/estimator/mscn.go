package estimator

import (
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/query"
	"repro/internal/table"
	"repro/internal/tensor"
)

// MSCN is the supervised deep-learning baseline of Table 2 (Kipf et al.,
// "Learned Cardinalities", adapted to single-relation predicates): a
// multi-set network that embeds each predicate with a small MLP, average-
// pools the embeddings, optionally concatenates a learned projection of a
// materialized-sample bitmap (which rows of a kept sample satisfy the
// query), and regresses the normalized log-selectivity.
//
// It is trained on (query, true cardinality) pairs — the paper generates
// 100K training queries from the same distribution as the test queries. The
// three paper variants map to the sample sizes: MSCN-0 (no bitmap),
// MSCN-base (1K sample rows), MSCN-10K (10K sample rows).
type MSCN struct {
	name    string
	nc      int
	predDim int
	hidden  int

	sample *Sample // nil for MSCN-0

	setNet *nn.Sequential // per-predicate embedding MLP
	bmNet  *nn.Sequential // bitmap projection (nil without sample)
	outNet *nn.Sequential // pooled features → scalar

	params []*nn.Param
	logMin float64 // log of the floor selectivity (1 tuple)

	bitmap []float32
}

// MSCNConfig sizes the network and its materialized sample.
type MSCNConfig struct {
	Name       string
	SampleRows int // 0 disables the bitmap branch (MSCN-0)
	Hidden     int // hidden width (default 64)
	Seed       int64
}

// NewMSCN builds an untrained network over the table's schema.
func NewMSCN(t *table.Table, cfg MSCNConfig) *MSCN {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 64
	}
	if cfg.Name == "" {
		cfg.Name = "MSCN"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &MSCN{
		name:    cfg.Name,
		nc:      t.NumCols(),
		predDim: t.NumCols() + 3,
		hidden:  cfg.Hidden,
		logMin:  math.Log(1 / float64(t.NumRows())),
	}
	m.setNet = &nn.Sequential{Layers: []nn.Layer{
		nn.NewLinear("set1", m.predDim, cfg.Hidden, rng),
		&nn.ReLU{},
		nn.NewLinear("set2", cfg.Hidden, cfg.Hidden, rng),
		&nn.ReLU{},
	}}
	outIn := cfg.Hidden
	if cfg.SampleRows > 0 {
		m.sample = NewSample(t, float64(cfg.SampleRows)/float64(t.NumRows()), cfg.Seed+1)
		m.bitmap = make([]float32, m.sample.NumKept())
		m.bmNet = &nn.Sequential{Layers: []nn.Layer{
			nn.NewLinear("bm1", m.sample.NumKept(), cfg.Hidden, rng),
			&nn.ReLU{},
		}}
		outIn += cfg.Hidden
	}
	m.outNet = &nn.Sequential{Layers: []nn.Layer{
		nn.NewLinear("out1", outIn, cfg.Hidden, rng),
		&nn.ReLU{},
		nn.NewLinear("out2", cfg.Hidden, 1, rng),
	}}
	m.params = append(m.params, m.setNet.Params()...)
	if m.bmNet != nil {
		m.params = append(m.params, m.bmNet.Params()...)
	}
	m.params = append(m.params, m.outNet.Params()...)
	return m
}

// Name implements Interface.
func (m *MSCN) Name() string { return m.name }

// SizeBytes counts network weights plus the materialized sample.
func (m *MSCN) SizeBytes() int64 {
	var n int64
	for _, p := range m.params {
		n += p.SizeBytes()
	}
	if m.sample != nil {
		n += m.sample.SizeBytes()
	}
	return n
}

// featurize encodes the restricted columns of a region as set elements:
// [one-hot(column) ; lo/D ; hi/D ; |Ri|/D].
func (m *MSCN) featurize(reg *query.Region) *tensor.Matrix {
	var rows int
	for i := range reg.Cols {
		if !reg.Cols[i].IsAll() {
			rows++
		}
	}
	if rows == 0 {
		return tensor.New(1, m.predDim) // zero element ≈ "no predicates"
	}
	x := tensor.New(rows, m.predDim)
	r := 0
	for i := range reg.Cols {
		cr := &reg.Cols[i]
		if cr.IsAll() {
			continue
		}
		d := float64(len(cr.Valid))
		row := x.Row(r)
		row[i] = 1
		row[m.nc] = float32(float64(cr.Lo) / d)
		row[m.nc+1] = float32(float64(cr.Hi) / d)
		row[m.nc+2] = float32(float64(cr.Count) / d)
		r++
	}
	return x
}

// forward runs the full network for one query, returning the predicted
// normalized log-selectivity ŷ ∈ ℝ and the set-embedding activations needed
// to route pooled gradients in backward.
func (m *MSCN) forward(reg *query.Region) (float32, *tensor.Matrix) {
	feats := m.featurize(reg)
	setOut := m.setNet.Forward(feats) // P×H
	outIn := m.hidden
	if m.bmNet != nil {
		outIn += m.hidden
	}
	z := tensor.New(1, outIn)
	inv := 1 / float32(setOut.Rows)
	for r := 0; r < setOut.Rows; r++ {
		tensor.Axpy(inv, setOut.Row(r), z.Row(0)[:m.hidden])
	}
	if m.bmNet != nil {
		m.sample.Bitmap(reg, m.bitmap)
		bmIn := tensor.FromSlice(1, len(m.bitmap), m.bitmap)
		bmOut := m.bmNet.Forward(bmIn)
		copy(z.Row(0)[m.hidden:], bmOut.Row(0))
	}
	y := m.outNet.Forward(z)
	return y.At(0, 0), setOut
}

// TrainOn fits the net to a labeled workload by minimizing squared error on
// the normalized log-selectivity. Labels are floored at one tuple, matching
// the evaluation's q-error floor.
func (m *MSCN) TrainOn(regions []*query.Region, trueSel []float64, epochs int, lr float64, seed int64) {
	if len(regions) == 0 {
		return
	}
	if epochs <= 0 {
		epochs = 30
	}
	if lr <= 0 {
		lr = 1e-3
	}
	opt := nn.NewAdam(lr)
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(regions))
	const minibatch = 32
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for off := 0; off < len(order); off += minibatch {
			end := min(off+minibatch, len(order))
			for _, p := range m.params {
				p.ZeroGrad()
			}
			for _, qi := range order[off:end] {
				m.backwardOne(regions[qi], m.target(trueSel[qi]))
			}
			inv := 1 / float32(end-off)
			for _, p := range m.params {
				p.Grad.Scale(inv)
			}
			opt.Step(m.params)
		}
	}
}

// target maps a selectivity to the regression target in [0, 1]:
// 0 ↔ sel = 1, 1 ↔ sel = 1 tuple.
func (m *MSCN) target(sel float64) float32 {
	ls := math.Log(math.Max(sel, math.Exp(m.logMin)))
	return float32(ls / m.logMin)
}

// backwardOne accumulates gradients for a single (query, label) pair.
func (m *MSCN) backwardOne(reg *query.Region, label float32) {
	yHat, setOut := m.forward(reg)
	dY := tensor.New(1, 1)
	dY.Set(0, 0, 2*(yHat-label))
	dZ := m.outNet.Backward(dY)
	// Split dZ into the pooled branch and the bitmap branch.
	if m.bmNet != nil {
		dBm := tensor.New(1, m.hidden)
		copy(dBm.Row(0), dZ.Row(0)[m.hidden:])
		m.bmNet.Backward(dBm)
	}
	dPool := dZ.Row(0)[:m.hidden]
	dSet := tensor.New(setOut.Rows, m.hidden)
	inv := 1 / float32(setOut.Rows)
	for r := 0; r < setOut.Rows; r++ {
		tensor.Axpy(inv, dPool, dSet.Row(r))
	}
	m.setNet.Backward(dSet)
}

// EstimateRegion implements Interface: invert the normalized-log target.
func (m *MSCN) EstimateRegion(reg *query.Region) float64 {
	yHat, _ := m.forward(reg)
	y := float64(yHat)
	if y < 0 {
		y = 0
	}
	if y > 1.5 {
		y = 1.5 // allow moderately below-floor predictions, then clamp
	}
	return clamp01(math.Exp(y * m.logMin))
}
