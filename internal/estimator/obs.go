package estimator

import (
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// Instrument wraps an estimator so every EstimateRegion call is counted and
// timed in reg, under metric names derived from the estimator's Name():
//
//	estimator_<name>_calls_total
//	estimator_<name>_latency_seconds
//
// The serving layer uses it to audit fallback routing — when core degrades a
// failed model query to a baseline, the baseline's call counter is the
// number of queries answered off the model path. A nil registry returns the
// estimator unchanged, so callers can wrap unconditionally.
func Instrument(inner Interface, reg *obs.Registry) Interface {
	if reg == nil {
		return inner
	}
	base := "estimator_" + obs.Sanitize(strings.ToLower(inner.Name()))
	return &instrumented{
		inner: inner,
		calls: reg.Counter(base + "_calls_total"),
		lat:   reg.Histogram(base+"_latency_seconds", obs.LatencyBuckets),
	}
}

type instrumented struct {
	inner Interface
	calls *obs.Counter
	lat   *obs.Histogram
}

// Name implements Interface, delegating to the wrapped estimator.
func (e *instrumented) Name() string { return e.inner.Name() }

// SizeBytes implements Interface, delegating to the wrapped estimator.
func (e *instrumented) SizeBytes() int64 { return e.inner.SizeBytes() }

// EstimateRegion counts and times the wrapped estimator's call.
func (e *instrumented) EstimateRegion(reg *query.Region) float64 {
	start := time.Now()
	sel := e.inner.EstimateRegion(reg)
	e.calls.Inc()
	e.lat.ObserveDuration(time.Since(start))
	return sel
}
