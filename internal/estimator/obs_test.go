package estimator

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

func TestInstrumentCountsAndPreservesEstimates(t *testing.T) {
	tbl := testTable(t, 2000)
	ind := NewIndep(tbl)
	reg := obs.New()
	wrapped := Instrument(ind, reg)
	if wrapped.Name() != ind.Name() || wrapped.SizeBytes() != ind.SizeBytes() {
		t.Fatal("Instrument changed identity metadata")
	}
	q, err := query.Compile(query.Query{Preds: []query.Predicate{
		{Col: 0, Op: query.OpLe, Code: 3}}}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got, want := wrapped.EstimateRegion(q), ind.EstimateRegion(q); got != want {
			t.Fatalf("instrumented estimate %v != %v", got, want)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["estimator_indep_calls_total"]; got != 5 {
		t.Fatalf("calls counter = %d, want 5 (counters: %v)", got, snap.Counters)
	}
	if h := snap.Histograms["estimator_indep_latency_seconds"]; h.Count != 5 {
		t.Fatalf("latency histogram count = %d, want 5", h.Count)
	}
}

func TestInstrumentNilRegistryIsIdentity(t *testing.T) {
	tbl := testTable(t, 500)
	ind := NewIndep(tbl)
	if got := Instrument(ind, nil); got != Interface(ind) {
		t.Fatal("nil registry should return the estimator unchanged")
	}
}

// testTable builds a small correlated table for instrumentation tests.
func testTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	codes := make([][]int32, 2)
	for c := range codes {
		codes[c] = make([]int32, rows)
	}
	for r := 0; r < rows; r++ {
		codes[0][r] = int32(r % 8)
		codes[1][r] = int32((r * r) % 8)
	}
	tbl, err := table.FromCodes("inst", []string{"a", "b"}, []int{8, 8}, codes)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}
