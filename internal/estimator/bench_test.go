package estimator

import (
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/table"
)

func benchFixture(b *testing.B) (*table.Table, []*query.Region) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	domains := []int{4, 75, 89, 63, 59, 9, 800, 225, 2, 2, 2}
	rows := 50000
	codes := make([][]int32, len(domains))
	names := make([]string, len(domains))
	for c := range codes {
		names[c] = string(rune('a' + c))
		codes[c] = make([]int32, rows)
		for r := range codes[c] {
			codes[c][r] = int32(rng.Intn(domains[c]))
		}
	}
	t, err := table.FromCodes("bench", names, domains, codes)
	if err != nil {
		b.Fatal(err)
	}
	gen := query.NewGenerator(t, query.DefaultGeneratorConfig(), 2)
	regs := make([]*query.Region, 32)
	for i := range regs {
		regs[i], err = query.Compile(gen.Next(), t)
		if err != nil {
			b.Fatal(err)
		}
	}
	return t, regs
}

func benchOne(b *testing.B, e Interface, regs []*query.Region) {
	b.Helper()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += e.EstimateRegion(regs[i%len(regs)])
	}
	_ = sink
}

func BenchmarkIndepEstimate(b *testing.B) {
	t, regs := benchFixture(b)
	benchOne(b, NewIndep(t), regs)
}

func BenchmarkPostgresEstimate(b *testing.B) {
	t, regs := benchFixture(b)
	benchOne(b, NewPostgres(t, 100, 10000), regs)
}

func BenchmarkDBMS1Estimate(b *testing.B) {
	t, regs := benchFixture(b)
	benchOne(b, NewDBMS1(t, 100, 200), regs)
}

func BenchmarkHistEstimate(b *testing.B) {
	t, regs := benchFixture(b)
	benchOne(b, NewHist(t, 64<<10), regs)
}

func BenchmarkSampleEstimate(b *testing.B) {
	t, regs := benchFixture(b)
	benchOne(b, NewSample(t, 0.013, 1), regs)
}

func BenchmarkKDEEstimate(b *testing.B) {
	t, regs := benchFixture(b)
	benchOne(b, NewKDE(t, 1500, 1), regs)
}

func BenchmarkMSCNEstimate(b *testing.B) {
	t, regs := benchFixture(b)
	benchOne(b, NewMSCN(t, MSCNConfig{SampleRows: 1000, Seed: 1}), regs)
}

func BenchmarkMSCNTrainStep(b *testing.B) {
	t, regs := benchFixture(b)
	m := NewMSCN(t, MSCNConfig{SampleRows: 1000, Seed: 1})
	sels := make([]float64, len(regs))
	for i := range sels {
		sels[i] = 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainOn(regs, sels, 1, 1e-3, int64(i))
	}
}
