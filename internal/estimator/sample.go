package estimator

import (
	"fmt"
	"math/rand"

	"repro/internal/query"
	"repro/internal/table"
)

// Sample is the uniform-sampling estimator of Table 2: keep p% of all tuples
// in memory and estimate each query by evaluating it over the kept tuples.
type Sample struct {
	rows  [][]int32 // kept tuples (codes)
	nCols int
	frac  float64
}

// NewSample retains a uniform random fraction frac of the table's rows.
func NewSample(t *table.Table, frac float64, seed int64) *Sample {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("estimator: sample fraction %v outside (0,1]", frac))
	}
	rng := rand.New(rand.NewSource(seed))
	n := t.NumRows()
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	pick := rng.Perm(n)[:k]
	s := &Sample{rows: make([][]int32, k), nCols: t.NumCols(), frac: frac}
	for i, r := range pick {
		row := make([]int32, t.NumCols())
		t.Row(r, row)
		s.rows[i] = row
	}
	return s
}

// Name implements Interface.
func (s *Sample) Name() string { return "Sample" }

// SizeBytes counts the kept tuples (4 bytes per code).
func (s *Sample) SizeBytes() int64 { return int64(len(s.rows)) * int64(s.nCols) * 4 }

// NumKept returns the number of retained tuples.
func (s *Sample) NumKept() int { return len(s.rows) }

// EstimateRegion counts qualifying sample tuples.
func (s *Sample) EstimateRegion(reg *query.Region) float64 {
	var hits int
	for _, row := range s.rows {
		if reg.Matches(row) {
			hits++
		}
	}
	return float64(hits) / float64(len(s.rows))
}

// Bitmap returns the per-sample-row qualification bitmap for a region. MSCN
// consumes this as its materialized-sample input feature.
func (s *Sample) Bitmap(reg *query.Region, dst []float32) {
	for i, row := range s.rows {
		if reg.Matches(row) {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}
