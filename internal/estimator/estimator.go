// Package estimator implements every baseline family the paper evaluates
// against (Table 2): the Indep heuristic, an N-dimensional histogram, a
// Postgres-style 1D-statistics estimator, a commercial-style estimator with
// cross-column correction (DBMS-1), uniform sampling, kernel density
// estimation with and without query-feedback bandwidth tuning, and the
// supervised MSCN deep regression net.
//
// All estimators consume compiled query regions (internal/query) and return
// selectivity fractions, so they are interchangeable in the benchmark
// harness; each also reports its storage footprint for the Table 1 budgets.
package estimator

import (
	"repro/internal/query"
	"repro/internal/table"
)

// Interface is the common estimator contract. internal/core.Estimator (Naru)
// satisfies it too.
type Interface interface {
	// Name identifies the estimator in result tables.
	Name() string
	// EstimateRegion returns the estimated selectivity fraction in [0, 1].
	EstimateRegion(reg *query.Region) float64
	// SizeBytes reports the storage the estimator occupies.
	SizeBytes() int64
}

// Indep is the heuristic baseline of Table 2: it scans the table once to
// obtain perfect per-column selectivities and combines them by
// multiplication. Its error isolates the damage done by the attribute-value
// independence assumption alone.
type Indep struct {
	freqs [][]float64 // exact per-column marginals
}

// NewIndep builds the estimator with one exact marginal per column.
func NewIndep(t *table.Table) *Indep {
	freqs := make([][]float64, t.NumCols())
	inv := 1 / float64(t.NumRows())
	for c, col := range t.Cols {
		f := make([]float64, col.DomainSize())
		for _, code := range col.Codes {
			f[code] += inv
		}
		freqs[c] = f
	}
	return &Indep{freqs: freqs}
}

// Name implements Interface.
func (e *Indep) Name() string { return "Indep" }

// SizeBytes counts the marginal vectors (float64 each).
func (e *Indep) SizeBytes() int64 {
	var n int64
	for _, f := range e.freqs {
		n += int64(len(f)) * 8
	}
	return n
}

// EstimateRegion multiplies exact per-column selectivities.
func (e *Indep) EstimateRegion(reg *query.Region) float64 {
	sel := 1.0
	for i := range reg.Cols {
		cr := &reg.Cols[i]
		if cr.IsAll() {
			continue
		}
		var s float64
		for v := int(cr.Lo); v < int(cr.Hi); v++ {
			if cr.Valid[v] {
				s += e.freqs[i][v]
			}
		}
		sel *= s
		if sel == 0 {
			return 0
		}
	}
	return sel
}
