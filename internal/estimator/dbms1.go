package estimator

import (
	"math"
	"sort"

	"repro/internal/query"
	"repro/internal/table"
)

// DBMS1 emulates the commercial estimator the paper calls DBMS-1: per-column
// 1D statistics plus inter-column unique-value counts. Two mechanisms make it
// markedly better than pure independence, matching the paper's observation
// that DBMS-1's tail errors sit far below Postgres's:
//
//  1. Exponential backoff: per-predicate selectivities are sorted most
//     selective first and combined as s1 · s2^(1/2) · s3^(1/4) · s4^(1/8)
//     (remaining predicates assumed fully correlated, i.e. contribute 1) —
//     the classical commercial correction for correlated conjunctions.
//  2. Column-group distinct counts: for every adjacent column pair the
//     estimator stores the number of distinct value combinations; when a
//     query places equality predicates on both members of a pair, 1/distinct
//     replaces the backoff product for that pair when it is larger (the pair
//     statistic knows the true co-occurrence density).
type DBMS1 struct {
	stats        []*colStats
	pairDistinct map[[2]int]float64 // distinct combo count per column pair
	rows         float64
}

// NewDBMS1 builds the estimator; pair statistics cover all adjacent column
// pairs (i, i+1), mirroring how DBAs create multi-column stats on likely
// combinations without covering all O(n²) pairs.
func NewDBMS1(t *table.Table, mcvLimit, histBuckets int) *DBMS1 {
	if mcvLimit <= 0 {
		mcvLimit = 100
	}
	if histBuckets <= 0 {
		histBuckets = 200
	}
	e := &DBMS1{
		stats:        make([]*colStats, t.NumCols()),
		pairDistinct: make(map[[2]int]float64),
		rows:         float64(t.NumRows()),
	}
	for c, col := range t.Cols {
		e.stats[c] = buildColStats(col, t.NumRows(), mcvLimit, histBuckets)
	}
	for c := 0; c+1 < t.NumCols(); c++ {
		seen := make(map[int64]struct{})
		a, b := t.Cols[c].Codes, t.Cols[c+1].Codes
		for r := 0; r < t.NumRows(); r++ {
			seen[int64(a[r])<<32|int64(uint32(b[r]))] = struct{}{}
		}
		e.pairDistinct[[2]int{c, c + 1}] = float64(len(seen))
	}
	return e
}

// Name implements Interface.
func (e *DBMS1) Name() string { return "DBMS-1" }

// SizeBytes totals the 1D summaries plus one float per pair statistic.
func (e *DBMS1) SizeBytes() int64 {
	var n int64
	for _, s := range e.stats {
		n += s.sizeBytes()
	}
	return n + int64(len(e.pairDistinct))*16
}

// EstimateRegion combines per-column estimates with exponential backoff and
// pair-distinct corrections.
func (e *DBMS1) EstimateRegion(reg *query.Region) float64 {
	type colSel struct {
		col int
		sel float64
		eq  bool
	}
	var sels []colSel
	for i := range reg.Cols {
		cr := &reg.Cols[i]
		if cr.IsAll() {
			continue
		}
		var s float64
		eq := cr.Count == 1
		if eq {
			s = e.stats[i].equalitySelectivity(cr.Lo)
		} else {
			s = e.stats[i].selectivity(cr)
		}
		if s == 0 {
			return 0
		}
		sels = append(sels, colSel{i, s, eq})
	}
	if len(sels) == 0 {
		return 1
	}
	// Pair-distinct correction: replace an equality pair's two factors by
	// max(product, 1/distinct(pair)) — the pair statistic captures how many
	// combinations actually co-occur.
	used := make(map[int]bool)
	sel := 1.0
	var backoff []float64
	for i := 0; i < len(sels); i++ {
		a := sels[i]
		if used[a.col] || !a.eq {
			continue
		}
		for j := i + 1; j < len(sels); j++ {
			b := sels[j]
			if used[b.col] || !b.eq {
				continue
			}
			lo, hi := a.col, b.col
			if lo > hi {
				lo, hi = hi, lo
			}
			if d, ok := e.pairDistinct[[2]int{lo, hi}]; ok && d > 0 {
				pairSel := math.Max(a.sel*b.sel, 1/d)
				// The pair behaves as one combined predicate.
				backoff = append(backoff, pairSel)
				used[a.col], used[b.col] = true, true
				break
			}
		}
	}
	for _, s := range sels {
		if !used[s.col] {
			backoff = append(backoff, s.sel)
		}
	}
	// Exponential backoff over the (possibly pair-merged) factors.
	sort.Float64s(backoff)
	exp := 1.0
	for i, s := range backoff {
		if i >= 4 {
			break // remaining predicates assumed fully correlated
		}
		sel *= math.Pow(s, exp)
		exp /= 2
	}
	return clamp01(sel)
}
