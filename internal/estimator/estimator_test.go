package estimator

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/table"
)

// indepTable builds a table whose columns are genuinely independent, so
// independence-assuming estimators should be near-exact on it.
func indepTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	domains := []int{5, 20, 3, 40}
	codes := make([][]int32, 4)
	for c := range codes {
		codes[c] = make([]int32, rows)
		for r := range codes[c] {
			codes[c][r] = int32(rng.Intn(domains[c]))
		}
	}
	tbl, err := table.FromCodes("indep", []string{"a", "b", "c", "d"}, domains, codes)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// corrTable builds a strongly correlated table where independence fails.
func corrTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	domains := []int{10, 10, 10}
	codes := make([][]int32, 3)
	for c := range codes {
		codes[c] = make([]int32, rows)
	}
	for r := 0; r < rows; r++ {
		x := int32(rng.Intn(10))
		codes[0][r] = x
		codes[1][r] = x // perfect correlation
		codes[2][r] = (x + int32(rng.Intn(2))) % 10
	}
	tbl, err := table.FromCodes("corr", []string{"x", "y", "z"}, domains, codes)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func region(t *testing.T, tbl *table.Table, preds ...query.Predicate) *query.Region {
	t.Helper()
	reg, err := query.Compile(query.Query{Preds: preds}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestIndepExactOnIndependentData(t *testing.T) {
	tbl := indepTable(t, 20000)
	e := NewIndep(tbl)
	reg := region(t, tbl,
		query.Predicate{Col: 0, Op: query.OpLe, Code: 2},
		query.Predicate{Col: 1, Op: query.OpGe, Code: 10})
	got := e.EstimateRegion(reg)
	truth := query.Selectivity(reg, tbl)
	if metrics.QError(got*20000, truth*20000) > 1.15 {
		t.Fatalf("Indep on independent data: est %v truth %v", got, truth)
	}
	if e.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
	if e.Name() != "Indep" {
		t.Fatal("Name")
	}
}

func TestIndepSingleColumnExact(t *testing.T) {
	tbl := corrTable(t, 5000)
	e := NewIndep(tbl)
	reg := region(t, tbl, query.Predicate{Col: 0, Op: query.OpEq, Code: 3})
	got := e.EstimateRegion(reg)
	truth := query.Selectivity(reg, tbl)
	if math.Abs(got-truth) > 1e-12 {
		t.Fatalf("single-column Indep must be exact: %v vs %v", got, truth)
	}
}

func TestIndepFailsOnCorrelatedData(t *testing.T) {
	tbl := corrTable(t, 5000)
	e := NewIndep(tbl)
	// x = 3 AND y = 3 has true selectivity ≈ P(x=3) but Indep squares it.
	reg := region(t, tbl,
		query.Predicate{Col: 0, Op: query.OpEq, Code: 3},
		query.Predicate{Col: 1, Op: query.OpEq, Code: 3})
	got := e.EstimateRegion(reg)
	truth := query.Selectivity(reg, tbl)
	if metrics.QError(got*5000, truth*5000) < 3 {
		t.Fatalf("Indep should err on correlated equality pair: est %v truth %v", got, truth)
	}
}

func TestHistConvergesToExactWithBudget(t *testing.T) {
	tbl := corrTable(t, 3000)
	// Budget large enough for full resolution (10×10×10 cells).
	h := NewHist(tbl, 1<<20)
	reg := region(t, tbl,
		query.Predicate{Col: 0, Op: query.OpLe, Code: 4},
		query.Predicate{Col: 1, Op: query.OpGe, Code: 2})
	got := h.EstimateRegion(reg)
	truth := query.Selectivity(reg, tbl)
	if math.Abs(got-truth) > 1e-9 {
		t.Fatalf("full-resolution Hist must be exact: %v vs %v", got, truth)
	}
}

func TestHistRespectsBudget(t *testing.T) {
	tbl := indepTable(t, 5000)
	budget := int64(4096)
	h := NewHist(tbl, budget)
	if h.SizeBytes() > budget+128 {
		t.Fatalf("Hist size %d exceeds budget %d", h.SizeBytes(), budget)
	}
	reg := region(t, tbl, query.Predicate{Col: 3, Op: query.OpLe, Code: 20})
	got := h.EstimateRegion(reg)
	if got < 0 || got > 1 {
		t.Fatalf("estimate %v out of range", got)
	}
}

func TestPostgresSingleColumnAccuracy(t *testing.T) {
	tbl := corrTable(t, 8000)
	p := NewPostgres(tbl, 100, 1000)
	for code := int32(0); code < 10; code++ {
		reg := region(t, tbl, query.Predicate{Col: 0, Op: query.OpEq, Code: code})
		got := p.EstimateRegion(reg)
		truth := query.Selectivity(reg, tbl)
		// With 100 MCVs on a 10-value domain, every value is an MCV: exact.
		if math.Abs(got-truth) > 1e-9 {
			t.Fatalf("code %d: %v vs %v", code, got, truth)
		}
	}
}

func TestPostgresRangeWithHistogram(t *testing.T) {
	// Large domain with few MCVs exercises the equi-depth histogram path.
	rng := rand.New(rand.NewSource(3))
	rows := 20000
	codes := [][]int32{make([]int32, rows)}
	for r := range codes[0] {
		codes[0][r] = int32(rng.Intn(1000))
	}
	tbl, err := table.FromCodes("hist1d", []string{"v"}, []int{1000}, codes)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPostgres(tbl, 10, 100)
	reg := region(t, tbl, query.Predicate{Col: 0, Op: query.OpLe, Code: 250})
	got := p.EstimateRegion(reg)
	truth := query.Selectivity(reg, tbl)
	if metrics.QError(got*float64(rows), truth*float64(rows)) > 1.3 {
		t.Fatalf("range estimate %v vs truth %v", got, truth)
	}
}

func TestDBMS1PairCorrection(t *testing.T) {
	tbl := corrTable(t, 5000)
	d := NewDBMS1(tbl, 100, 100)
	p := NewPostgres(tbl, 100, 100)
	reg := region(t, tbl,
		query.Predicate{Col: 0, Op: query.OpEq, Code: 3},
		query.Predicate{Col: 1, Op: query.OpEq, Code: 3})
	truth := query.Selectivity(reg, tbl)
	dErr := metrics.QError(d.EstimateRegion(reg)*5000, truth*5000)
	pErr := metrics.QError(p.EstimateRegion(reg)*5000, truth*5000)
	if dErr >= pErr {
		t.Fatalf("DBMS-1 (%.2f) should beat Postgres (%.2f) on a correlated equality pair", dErr, pErr)
	}
	if d.Name() != "DBMS-1" {
		t.Fatal("Name")
	}
}

func TestSampleEstimator(t *testing.T) {
	tbl := corrTable(t, 10000)
	s := NewSample(tbl, 0.05, 7)
	if got := s.NumKept(); got != 500 {
		t.Fatalf("kept %d", got)
	}
	reg := region(t, tbl, query.Predicate{Col: 0, Op: query.OpLe, Code: 4})
	got := s.EstimateRegion(reg)
	truth := query.Selectivity(reg, tbl)
	if math.Abs(got-truth) > 0.08 {
		t.Fatalf("sample estimate %v vs truth %v", got, truth)
	}
	// Bitmap agrees with per-row matching.
	bm := make([]float32, s.NumKept())
	s.Bitmap(reg, bm)
	var ones float64
	for _, b := range bm {
		ones += float64(b)
	}
	if math.Abs(ones/float64(len(bm))-got) > 1e-9 {
		t.Fatal("Bitmap inconsistent with EstimateRegion")
	}
}

func TestSampleMissesRareValues(t *testing.T) {
	// A value occurring once in 10K rows is usually absent from a 1%
	// sample → estimate 0. This is the failure mode Table 3 shows for
	// low-selectivity queries.
	rows := 10000
	codes := [][]int32{make([]int32, rows)}
	for r := range codes[0] {
		codes[0][r] = int32(r % 2)
	}
	codes[0][0] = 2 // singleton value
	tbl, err := table.FromCodes("rare", []string{"v"}, []int{3}, codes)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSample(tbl, 0.01, 3)
	reg := region(t, tbl, query.Predicate{Col: 0, Op: query.OpEq, Code: 2})
	if got := s.EstimateRegion(reg); got != 0 {
		t.Skipf("sample happened to include the singleton (est %v)", got)
	}
}

func TestKDESingleColumnRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := 20000
	codes := [][]int32{make([]int32, rows)}
	for r := range codes[0] {
		codes[0][r] = int32(rng.Intn(500))
	}
	tbl, err := table.FromCodes("kde1", []string{"v"}, []int{500}, codes)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKDE(tbl, 2000, 5)
	reg := region(t, tbl, query.Predicate{Col: 0, Op: query.OpLe, Code: 100})
	got := k.EstimateRegion(reg)
	truth := query.Selectivity(reg, tbl)
	if metrics.QError(got*float64(rows), truth*float64(rows)) > 1.5 {
		t.Fatalf("KDE range: %v vs %v", got, truth)
	}
	// Wildcard region integrates to 1.
	all := region(t, tbl)
	if math.Abs(k.EstimateRegion(all)-1) > 1e-9 {
		t.Fatal("wildcard should be exactly 1 after renormalization")
	}
}

func TestKDETuningImproves(t *testing.T) {
	tbl := corrTable(t, 8000)
	k := NewKDE(tbl, 400, 6)
	// Degrade bandwidths badly, then let feedback fix them.
	for c := range k.bw {
		k.bw[c] *= 40
	}
	gen := query.NewGenerator(tbl, query.GeneratorConfig{MinFilters: 1, MaxFilters: 2, SmallDomainThreshold: 3}, 8)
	var regions []*query.Region
	var sels []float64
	for i := 0; i < 40; i++ {
		reg, err := query.Compile(gen.Next(), tbl)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, reg)
		sels = append(sels, query.Selectivity(reg, tbl))
	}
	loss := func() float64 {
		var s float64
		for i, reg := range regions {
			s += math.Abs(math.Log(math.Max(k.EstimateRegion(reg), 1e-9)) - math.Log(math.Max(sels[i], 1e-9)))
		}
		return s
	}
	before := loss()
	k.TuneBandwidths(regions, sels, 2)
	after := loss()
	if after >= before {
		t.Fatalf("bandwidth tuning did not improve: %v → %v", before, after)
	}
	if k.Name() != "KDE-superv" {
		t.Fatal("tuned KDE should rename itself")
	}
}

func TestMSCNLearnsWorkload(t *testing.T) {
	tbl := corrTable(t, 6000)
	gen := query.NewGenerator(tbl, query.GeneratorConfig{MinFilters: 1, MaxFilters: 3, SmallDomainThreshold: 3}, 9)
	var regions []*query.Region
	var sels []float64
	for i := 0; i < 300; i++ {
		reg, err := query.Compile(gen.Next(), tbl)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, reg)
		sels = append(sels, query.Selectivity(reg, tbl))
	}
	m := NewMSCN(tbl, MSCNConfig{Name: "MSCN-base", SampleRows: 200, Hidden: 32, Seed: 10})
	m.TrainOn(regions[:250], sels[:250], 40, 2e-3, 11)
	// In-distribution test queries: decent median error expected.
	var errs []float64
	for i := 250; i < 300; i++ {
		est := m.EstimateRegion(regions[i])
		errs = append(errs, metrics.QError(est*6000, sels[i]*6000))
	}
	med := metrics.Quantile(errs, 0.5)
	if med > 4 {
		t.Fatalf("MSCN median q-error %v too high after training", med)
	}
	if m.Name() != "MSCN-base" {
		t.Fatal("Name")
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
}

func TestMSCNZeroVariantHasNoSample(t *testing.T) {
	tbl := corrTable(t, 2000)
	m := NewMSCN(tbl, MSCNConfig{Name: "MSCN-0", SampleRows: 0, Hidden: 16, Seed: 12})
	if m.sample != nil || m.bmNet != nil {
		t.Fatal("MSCN-0 must not materialize a sample")
	}
	reg := region(t, tbl, query.Predicate{Col: 0, Op: query.OpEq, Code: 1})
	got := m.EstimateRegion(reg)
	if got < 0 || got > 1 {
		t.Fatalf("estimate %v out of range", got)
	}
}

func TestMSCNBitmapHelpsOnSampledValues(t *testing.T) {
	// With a sample bitmap, MSCN can distinguish matching vs empty regions
	// even before heavy training; check the bitmap branch is wired by
	// verifying the two variants differ in output.
	tbl := corrTable(t, 4000)
	withBM := NewMSCN(tbl, MSCNConfig{SampleRows: 500, Hidden: 16, Seed: 13})
	reg1 := region(t, tbl, query.Predicate{Col: 0, Op: query.OpLe, Code: 8})
	reg2 := region(t, tbl,
		query.Predicate{Col: 0, Op: query.OpEq, Code: 0},
		query.Predicate{Col: 1, Op: query.OpEq, Code: 9}) // correlated ⇒ empty
	a, _ := withBM.forward(reg1)
	b, _ := withBM.forward(reg2)
	if a == b {
		t.Fatal("bitmap branch has no effect on the prediction")
	}
}

func TestInterfaceConformance(t *testing.T) {
	tbl := corrTable(t, 1000)
	var ests []Interface = []Interface{
		NewIndep(tbl),
		NewHist(tbl, 8192),
		NewPostgres(tbl, 50, 100),
		NewDBMS1(tbl, 50, 100),
		NewSample(tbl, 0.05, 1),
		NewKDE(tbl, 100, 1),
		NewMSCN(tbl, MSCNConfig{SampleRows: 50, Hidden: 8, Seed: 1}),
	}
	reg := region(t, tbl, query.Predicate{Col: 0, Op: query.OpGe, Code: 5})
	for _, e := range ests {
		got := e.EstimateRegion(reg)
		if got < 0 || got > 1 || math.IsNaN(got) {
			t.Fatalf("%s: estimate %v out of range", e.Name(), got)
		}
		if e.SizeBytes() <= 0 {
			t.Fatalf("%s: non-positive size", e.Name())
		}
	}
}

func TestEstimatorsOnEmptyRegion(t *testing.T) {
	tbl := corrTable(t, 1000)
	reg := region(t, tbl,
		query.Predicate{Col: 0, Op: query.OpEq, Code: 1},
		query.Predicate{Col: 0, Op: query.OpEq, Code: 2}) // unsatisfiable
	for _, e := range []Interface{
		NewIndep(tbl), NewHist(tbl, 8192), NewPostgres(tbl, 50, 100),
		NewDBMS1(tbl, 50, 100), NewSample(tbl, 0.05, 1), NewKDE(tbl, 100, 1),
	} {
		if got := e.EstimateRegion(reg); got != 0 {
			t.Fatalf("%s: empty region estimate %v", e.Name(), got)
		}
	}
}
