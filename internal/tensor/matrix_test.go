package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %d×%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 5 // Row aliases storage
	if m.At(1, 0) != 5 {
		t.Fatal("Row does not alias storage")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 3 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{10, 20, 30, 40})
	a.Add(b)
	want := []float32{11, 22, 33, 44}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Add: got %v want %v", a.Data, want)
		}
	}
	a.AddScaled(b, -1)
	for i, v := range []float32{1, 2, 3, 4} {
		if a.Data[i] != v {
			t.Fatalf("AddScaled: got %v", a.Data)
		}
	}
	a.Mul(b)
	for i, v := range []float32{10, 40, 90, 160} {
		if a.Data[i] != v {
			t.Fatalf("Mul: got %v", a.Data)
		}
	}
	a.Scale(0.5)
	if a.At(1, 1) != 80 {
		t.Fatalf("Scale: got %v", a.Data)
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestMaxAbsAndNorm(t *testing.T) {
	m := FromSlice(1, 3, []float32{-5, 2, 3})
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	want := math.Sqrt(25 + 4 + 9)
	if got := m.Norm2(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Norm2 = %v want %v", got, want)
	}
}

// naiveMatMul is the reference O(mnk) triple loop in float64.
func naiveMatMul(a, b *Matrix, transA, transB bool) *Matrix {
	ar, ac := a.Rows, a.Cols
	if transA {
		ar, ac = ac, ar
	}
	br, bc := b.Rows, b.Cols
	if transB {
		br, bc = bc, br
	}
	if ac != br {
		panic("naive shape")
	}
	at := func(m *Matrix, r, c int, tr bool) float64 {
		if tr {
			r, c = c, r
		}
		return float64(m.At(r, c))
	}
	out := New(ar, bc)
	for i := 0; i < ar; i++ {
		for j := 0; j < bc; j++ {
			var s float64
			for k := 0; k < ac; k++ {
				s += at(a, i, k, transA) * at(b, k, j, transB)
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	m.Randn(rng, 1)
	return m
}

func matClose(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %d×%d vs %d×%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > tol {
			t.Fatalf("element %d: got %v want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {33, 17, 65}, {128, 64, 200}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		c := New(m, n)
		MatMul(c, a, b, false)
		matClose(t, c, naiveMatMul(a, b, false, false), 1e-3)
	}
}

func TestMatMulAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 4, 5), randMat(rng, 5, 6)
	c := New(4, 6)
	c.Fill(1)
	MatMul(c, a, b, true)
	want := naiveMatMul(a, b, false, false)
	for i := range want.Data {
		want.Data[i]++
	}
	matClose(t, c, want, 1e-4)
}

func TestMatMulTransBMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{2, 3, 4}, {16, 8, 100}, {65, 33, 7}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m, k), randMat(rng, n, k)
		c := New(m, n)
		MatMulTransB(c, a, b, false)
		matClose(t, c, naiveMatMul(a, b, false, true), 1e-3)
	}
}

func TestMatMulTransAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][3]int{{3, 2, 4}, {100, 16, 8}, {7, 65, 33}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m, k), randMat(rng, m, n)
		c := New(k, n)
		MatMulTransA(c, a, b, false)
		matClose(t, c, naiveMatMul(a, b, true, false), 1e-3)
	}
}

func TestMatMulTransAAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := randMat(rng, 6, 3), randMat(rng, 6, 4)
	c := New(3, 4)
	c.Fill(2)
	MatMulTransA(c, a, b, true)
	want := naiveMatMul(a, b, true, false)
	for i := range want.Data {
		want.Data[i] += 2
	}
	matClose(t, c, want, 1e-4)
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2), false)
}

func TestDotAxpy(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5}
	y := []float32{5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 5+8+9+8+5 {
		t.Fatalf("Dot = %v", got)
	}
	Axpy(2, x, y)
	want := []float32{7, 8, 9, 10, 11}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy: got %v want %v", y, want)
		}
	}
	if Dot(nil, nil) != 0 {
		t.Fatal("Dot(nil,nil) != 0")
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100, 1000} {
		seen := make([]int32, n)
		ParallelFor(n, func(s, e int) {
			for i := s; i < e; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

// Property: (A·B)ᵀ computed via MatMulTransB/TransA agrees with MatMul.
func TestQuickTransposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(mSeed, kSeed, nSeed uint8) bool {
		m, k, n := int(mSeed%8)+1, int(kSeed%8)+1, int(nSeed%8)+1
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		// C1 = A·B
		c1 := New(m, n)
		MatMul(c1, a, b, false)
		// C2 = A·(Bᵀ)ᵀ via MatMulTransB with bt = Bᵀ materialized
		bt := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		c2 := New(m, n)
		MatMulTransB(c2, a, bt, false)
		for i := range c1.Data {
			if math.Abs(float64(c1.Data[i]-c2.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
