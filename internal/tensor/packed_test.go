package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refMatMul is the reference product the packed kernel is checked against.
func refMatMul(c, a, b *Matrix, accumulate bool) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			if accumulate {
				c.Set(i, j, c.At(i, j)+s)
			} else {
				c.Set(i, j, s)
			}
		}
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	m.Randn(rng, 1)
	return m
}

func maxAbsDiff(a, b *Matrix) float64 {
	var mx float64
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i] - b.Data[i])); d > mx {
			mx = d
		}
	}
	return mx
}

// TestMatMulPackedMatchesNaive sweeps shapes that exercise every remainder
// path of the micro-kernel (row bands, tail panels, tiny K).
func TestMatMulPackedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 3, 9}, {8, 128, 128},
		{13, 17, 19}, {64, 33, 31}, {100, 1, 6}, {2, 64, 65},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		want := New(m, n)
		refMatMul(want, a, b, false)

		var pb PackedB
		pb.Pack(b)
		got := New(m, n)
		MatMulPacked(got, a, &pb, nil, false, false)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("%dx%dx%d: packed differs from naive by %g", m, k, n, d)
		}

		// Accumulate path.
		got2 := randomMatrix(rng, m, n)
		want2 := got2.Clone()
		refMatMul(want2, a, b, true)
		MatMulPacked(got2, a, &pb, nil, false, true)
		if d := maxAbsDiff(got2, want2); d > 1e-4 {
			t.Fatalf("%dx%dx%d: packed accumulate differs by %g", m, k, n, d)
		}
	}
}

// TestMatMulPackedEpilogue checks the fused bias and bias+ReLU epilogues.
func TestMatMulPackedEpilogue(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range [][3]int{{6, 10, 9}, {17, 32, 30}, {4, 8, 4}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		bias := make([]float32, n)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		want := New(m, n)
		refMatMul(want, a, b, false)
		for r := 0; r < m; r++ {
			row := want.Row(r)
			for j := range row {
				row[j] += bias[j]
			}
		}
		got := New(m, n)
		LinearReLU(got, a, b, bias, false)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("%v: bias epilogue differs by %g", sh, d)
		}

		for _, row := range [][]float32{want.Data} {
			for j, v := range row {
				if v < 0 {
					row[j] = 0
				}
			}
		}
		LinearReLU(got, a, b, bias, true)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("%v: bias+ReLU epilogue differs by %g", sh, d)
		}
	}
}

// TestPackTransMatchesTransB checks that PackTrans + packed kernel agrees
// with the definition C = A·Bᵀ.
func TestPackTransMatchesTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range [][3]int{{5, 7, 3}, {16, 64, 50}, {33, 31, 9}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, n, k) // stored n×k; logical operand is Bᵀ (k×n)
		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for kk := 0; kk < k; kk++ {
					s += a.At(i, kk) * b.At(j, kk)
				}
				want.Set(i, j, s)
			}
		}
		var pb PackedB
		pb.PackTrans(b)
		got := New(m, n)
		MatMulPacked(got, a, &pb, nil, false, false)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("%v: PackTrans product differs by %g", sh, d)
		}
	}
}

// TestMatMulDispatchEquivalence drives the public MatMul/MatMulTransB over
// sizes straddling the packed-dispatch threshold and checks both routes give
// the same answer.
func TestMatMulDispatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, sh := range [][3]int{{4, 16, 16}, {64, 64, 64}, {200, 128, 96}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		want := New(m, n)
		refMatMul(want, a, b, false)
		got := New(m, n)
		MatMul(got, a, b, false)
		if d := maxAbsDiff(got, want); d > 1e-3 {
			t.Fatalf("MatMul %v differs from naive by %g", sh, d)
		}

		bt := randomMatrix(rng, n, k)
		wantT := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for kk := 0; kk < k; kk++ {
					s += a.At(i, kk) * bt.At(j, kk)
				}
				wantT.Set(i, j, s)
			}
		}
		gotT := New(m, n)
		MatMulTransB(gotT, a, bt, false)
		if d := maxAbsDiff(gotT, wantT); d > 1e-3 {
			t.Fatalf("MatMulTransB %v differs from naive by %g", sh, d)
		}
	}
}

// TestLinearReLUCols checks the column-window product against running the
// full fused kernel and splicing: columns below j0 must be untouched, columns
// at and above j0 must match the full product bitwise (same kernel, same
// operand panels).
func TestLinearReLUCols(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range [][3]int{{5, 12, 11}, {16, 32, 32}, {7, 9, 4}, {3, 6, 1}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		bias := make([]float32, n)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		full := New(m, n)
		LinearReLU(full, a, b, bias, true)
		for j0 := 0; j0 <= n+1; j0++ {
			got := New(m, n)
			for i := range got.Data {
				got.Data[i] = -7 // sentinel: columns < j0 must keep it
			}
			LinearReLUCols(got, a, b, bias, true, j0)
			for r := 0; r < m; r++ {
				row, fullRow := got.Row(r), full.Row(r)
				for j := 0; j < n; j++ {
					if j < j0 {
						if row[j] != -7 {
							t.Fatalf("%v j0=%d: column %d below window was written", sh, j0, j)
						}
					} else if d := math.Abs(float64(row[j] - fullRow[j])); d > 1e-5 {
						t.Fatalf("%v j0=%d: window column %d differs by %g", sh, j0, j, d)
					}
				}
			}
		}
	}
}
