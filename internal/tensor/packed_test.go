package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refMatMul is the reference product the packed kernel is checked against.
func refMatMul(c, a, b *Matrix, accumulate bool) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			if accumulate {
				c.Set(i, j, c.At(i, j)+s)
			} else {
				c.Set(i, j, s)
			}
		}
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	m.Randn(rng, 1)
	return m
}

func maxAbsDiff(a, b *Matrix) float64 {
	var mx float64
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i] - b.Data[i])); d > mx {
			mx = d
		}
	}
	return mx
}

// TestMatMulPackedMatchesNaive sweeps shapes that exercise every remainder
// path of the micro-kernel (row bands, tail panels, tiny K).
func TestMatMulPackedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 3, 9}, {8, 128, 128},
		{13, 17, 19}, {64, 33, 31}, {100, 1, 6}, {2, 64, 65},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		want := New(m, n)
		refMatMul(want, a, b, false)

		var pb PackedB
		pb.Pack(b)
		got := New(m, n)
		MatMulPacked(got, a, &pb, nil, false, false)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("%dx%dx%d: packed differs from naive by %g", m, k, n, d)
		}

		// Accumulate path.
		got2 := randomMatrix(rng, m, n)
		want2 := got2.Clone()
		refMatMul(want2, a, b, true)
		MatMulPacked(got2, a, &pb, nil, false, true)
		if d := maxAbsDiff(got2, want2); d > 1e-4 {
			t.Fatalf("%dx%dx%d: packed accumulate differs by %g", m, k, n, d)
		}
	}
}

// TestMatMulPackedEpilogue checks the fused bias and bias+ReLU epilogues.
func TestMatMulPackedEpilogue(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range [][3]int{{6, 10, 9}, {17, 32, 30}, {4, 8, 4}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		bias := make([]float32, n)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		want := New(m, n)
		refMatMul(want, a, b, false)
		for r := 0; r < m; r++ {
			row := want.Row(r)
			for j := range row {
				row[j] += bias[j]
			}
		}
		got := New(m, n)
		LinearReLU(got, a, b, bias, false)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("%v: bias epilogue differs by %g", sh, d)
		}

		for _, row := range [][]float32{want.Data} {
			for j, v := range row {
				if v < 0 {
					row[j] = 0
				}
			}
		}
		LinearReLU(got, a, b, bias, true)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("%v: bias+ReLU epilogue differs by %g", sh, d)
		}
	}
}

// TestPackTransMatchesTransB checks that PackTrans + packed kernel agrees
// with the definition C = A·Bᵀ.
func TestPackTransMatchesTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range [][3]int{{5, 7, 3}, {16, 64, 50}, {33, 31, 9}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, n, k) // stored n×k; logical operand is Bᵀ (k×n)
		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for kk := 0; kk < k; kk++ {
					s += a.At(i, kk) * b.At(j, kk)
				}
				want.Set(i, j, s)
			}
		}
		var pb PackedB
		pb.PackTrans(b)
		got := New(m, n)
		MatMulPacked(got, a, &pb, nil, false, false)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("%v: PackTrans product differs by %g", sh, d)
		}
	}
}

// TestMatMulDispatchEquivalence drives the public MatMul/MatMulTransB over
// sizes straddling the packed-dispatch threshold and checks both routes give
// the same answer.
func TestMatMulDispatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, sh := range [][3]int{{4, 16, 16}, {64, 64, 64}, {200, 128, 96}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		want := New(m, n)
		refMatMul(want, a, b, false)
		got := New(m, n)
		MatMul(got, a, b, false)
		if d := maxAbsDiff(got, want); d > 1e-3 {
			t.Fatalf("MatMul %v differs from naive by %g", sh, d)
		}

		bt := randomMatrix(rng, n, k)
		wantT := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for kk := 0; kk < k; kk++ {
					s += a.At(i, kk) * bt.At(j, kk)
				}
				wantT.Set(i, j, s)
			}
		}
		gotT := New(m, n)
		MatMulTransB(gotT, a, bt, false)
		if d := maxAbsDiff(gotT, wantT); d > 1e-3 {
			t.Fatalf("MatMulTransB %v differs from naive by %g", sh, d)
		}
	}
}

// TestLinearReLUCols checks the column-window product against running the
// full fused kernel and splicing: columns below j0 must be untouched, columns
// at and above j0 must match the full product bitwise (same kernel, same
// operand panels).
func TestLinearReLUCols(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range [][3]int{{5, 12, 11}, {16, 32, 32}, {7, 9, 4}, {3, 6, 1}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		bias := make([]float32, n)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		full := New(m, n)
		LinearReLU(full, a, b, bias, true)
		for j0 := 0; j0 <= n+1; j0++ {
			got := New(m, n)
			for i := range got.Data {
				got.Data[i] = -7 // sentinel: columns < j0 must keep it
			}
			LinearReLUCols(got, a, b, bias, true, j0)
			for r := 0; r < m; r++ {
				row, fullRow := got.Row(r), full.Row(r)
				for j := 0; j < n; j++ {
					if j < j0 {
						if row[j] != -7 {
							t.Fatalf("%v j0=%d: column %d below window was written", sh, j0, j)
						}
					} else if d := math.Abs(float64(row[j] - fullRow[j])); d > 1e-5 {
						t.Fatalf("%v j0=%d: window column %d differs by %g", sh, j0, j, d)
					}
				}
			}
		}
	}
}

// subMatrix copies the block src[i0:i1, j0:j1) into a fresh matrix.
func subMatrix(src *Matrix, i0, i1, j0, j1 int) *Matrix {
	out := New(i1-i0, j1-j0)
	for r := i0; r < i1; r++ {
		copy(out.Row(r-i0), src.Row(r)[j0:j1])
	}
	return out
}

// TestPackRangeMatchesPackedFull checks that a product against a PackRange
// window equals (bitwise) the plain packed product of the equivalent copied
// sub-operands, across offsets that exercise panel remainders.
func TestPackRangeMatchesPackedFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := randomMatrix(rng, 37, 53)
	windows := [][4]int{
		{0, 37, 0, 53}, {0, 37, 8, 24}, {3, 20, 5, 53}, {0, 12, 13, 14},
		{36, 37, 0, 8}, {0, 0, 0, 0}, {5, 5, 7, 19},
	}
	for _, w := range windows {
		i0, i1, j0, j1 := w[0], w[1], w[2], w[3]
		a := randomMatrix(rng, 9, i1-i0)
		var pb PackedB
		pb.PackRange(b, i0, i1, j0, j1)
		got := New(9, j1-j0)
		if j1 > j0 {
			MatMulPacked(got, a, &pb, nil, false, false)
		}
		var full PackedB
		bw := subMatrix(b, i0, i1, j0, j1)
		full.Pack(bw)
		want := New(9, j1-j0)
		if j1 > j0 {
			MatMulPacked(want, a, &full, nil, false, false)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("window %v: element %d differs: %g vs %g", w, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulPackedPrefixBitwise checks the K-prefix product against the full
// packed product where the weight tail is exactly zero: masked head blocks
// guarantee zero tail weights, and appending exact-zero fused terms to the
// same-order prefix accumulation must not change a single bit.
func TestMatMulPackedPrefixBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m, kFull, n = 21, 47, 29
	for _, kc := range []int{0, 1, 8, 17, 47} {
		a := randomMatrix(rng, m, kFull)
		b := New(kFull, n) // zero tail below row kc, like a masked head block
		for r := 0; r < kc; r++ {
			for j := 0; j < n; j++ {
				b.Set(r, j, float32(rng.NormFloat64()))
			}
		}
		bias := make([]float32, n)
		for j := range bias {
			bias[j] = float32(rng.NormFloat64())
		}

		var full PackedB
		full.Pack(b)
		want := New(m, n)
		MatMulPacked(want, a, &full, bias, false, false)

		var pref PackedB
		pref.PackRange(b, 0, kc, 0, n)
		got := New(m, n)
		MatMulPackedPrefix(got, a, &pref, bias, false, false, 0)

		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("kc=%d: element %d differs: %g vs %g", kc, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestLinearReLUBandMatchesCols checks that refreshing adjacent interior bands
// reproduces (bitwise) the suffix refresh of LinearReLUCols over their union.
func TestLinearReLUBandMatchesCols(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const m, k, n = 19, 31, 41
	a := randomMatrix(rng, m, k)
	b := randomMatrix(rng, k, n)
	bias := make([]float32, n)
	for j := range bias {
		bias[j] = float32(rng.NormFloat64())
	}
	const j0 = 11
	want := New(m, n)
	want.Fill(-7)
	LinearReLUCols(want, a, b, bias, true, j0)

	got := New(m, n)
	got.Fill(-7)
	for _, band := range [][2]int{{j0, 18}, {18, 18}, {18, 33}, {33, n}} {
		LinearReLUBand(got, a, b, bias, true, band[0], band[1])
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d differs: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}
