package tensor

import (
	"math/rand"
	"testing"
)

// TestMatMulTransAPackedMatchesNaive drives shapes large and dense enough to
// take the packed register-tiled route (transpose + Pack + micro-kernel) and
// checks them against the float64 reference, including accumulate mode.
func TestMatMulTransAPackedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{512, 256, 128}, {512, 1900, 64}, {100, 37, 129}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m, k), randMat(rng, m, n)

		c := New(k, n)
		MatMulTransA(c, a, b, false)
		matClose(t, c, naiveMatMul(a, b, true, false), 2e-2)

		acc := New(k, n)
		acc.Fill(3)
		MatMulTransA(acc, a, b, true)
		want := naiveMatMul(a, b, true, false)
		for i := range want.Data {
			want.Data[i] += 3
		}
		matClose(t, acc, want, 2e-2)
	}
}

// TestMatMulTransADeterministic: the dispatch (sampled density) and kernels
// must be pure functions of the operands — the sharded-training determinism
// contract rests on this.
func TestMatMulTransADeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a, b := randMat(rng, 512, 256), randMat(rng, 512, 128)
	c1, c2 := New(256, 128), New(256, 128)
	MatMulTransA(c1, a, b, false)
	MatMulTransA(c2, a, b, false)
	for i := range c1.Data {
		if c1.Data[i] != c2.Data[i] {
			t.Fatalf("element %d differs across runs: %v vs %v", i, c1.Data[i], c2.Data[i])
		}
	}
}

func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := randMat(rng, 7, 13)
	dst := new(Matrix)
	transposeInto(dst, src)
	if dst.Rows != 13 || dst.Cols != 7 {
		t.Fatalf("transpose shape %d×%d", dst.Rows, dst.Cols)
	}
	for i := 0; i < src.Rows; i++ {
		for j := 0; j < src.Cols; j++ {
			if dst.At(j, i) != src.At(i, j) {
				t.Fatalf("(%d,%d) mismatch", i, j)
			}
		}
	}
	// Reuse with a smaller shape must not read stale capacity.
	small := randMat(rng, 2, 3)
	transposeInto(dst, small)
	if dst.Rows != 3 || dst.Cols != 2 || len(dst.Data) != 6 {
		t.Fatalf("reused transpose shape %d×%d len %d", dst.Rows, dst.Cols, len(dst.Data))
	}
}

// TestDensitySampled: the estimate must be deterministic, exact on small
// matrices, and must not be fooled by column-aligned structured sparsity when
// the raw stride would divide the row length.
func TestDensitySampled(t *testing.T) {
	small := FromSlice(2, 3, []float32{1, 0, 0, 0, 2, 0})
	if d := density(small); d != float64(2)/6 {
		t.Fatalf("small density = %v, want %v", d, float64(2)/6)
	}

	// 4096×64: n/densitySamples = 128, a multiple of Cols — without the
	// stride nudge every probe would land in the same two columns. Nonzeros
	// live only in column 0, so the true density is 1/64.
	structured := New(4096, 64)
	for r := 0; r < structured.Rows; r++ {
		structured.Set(r, 0, 1)
	}
	d := density(structured)
	if d >= packedDensityCutoff {
		t.Fatalf("structured-sparse density = %v, want < %v", d, packedDensityCutoff)
	}
	if d2 := density(structured); d2 != d {
		t.Fatalf("density not deterministic: %v vs %v", d, d2)
	}

	dense := New(4096, 64)
	dense.Fill(1)
	if d := density(dense); d != 1 {
		t.Fatalf("dense density = %v, want 1", d)
	}
}

// TestAxpyMatchesScalar exercises the FMA axpy against the plain loop across
// vector lengths that cover the 8-wide body and every tail size.
func TestAxpyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 7, 8, 9, 15, 16, 63, 64, 100, 257} {
		x := make([]float32, n)
		y := make([]float32, n)
		want := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
			y[i] = float32(rng.NormFloat64())
			want[i] = y[i]
		}
		const alpha = float32(0.37)
		for i := range want {
			want[i] += alpha * x[i]
		}
		Axpy(alpha, x, y)
		for i := range want {
			if diff := float64(want[i] - y[i]); diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("n=%d: y[%d] = %v, want %v", n, i, y[i], want[i])
			}
		}
	}
}

// TestSetAccelLegacyDispatchAgrees: with acceleration off, products must
// still be correct (portable Go tile, conservative cutoffs), and SetAccel
// must restore the previous setting.
func TestSetAccelLegacyDispatchAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a, b := randMat(rng, 64, 96), randMat(rng, 96, 80)
	fast := New(64, 80)
	MatMul(fast, a, b, false)

	prev := SetAccel(false)
	if !prev {
		t.Fatal("acceleration should default on")
	}
	slow := New(64, 80)
	MatMul(slow, a, b, false)
	ta := New(96, 80)
	MatMulTransA(ta, randMat(rng, 4, 96), randMat(rng, 4, 80), false)
	if on := SetAccel(true); on {
		t.Fatal("SetAccel(false) did not stick")
	}

	matClose(t, slow, fast, 1e-3)
	want := naiveMatMul(a, b, false, false)
	matClose(t, slow, want, 1e-3)
}
