package tensor

// ExpRow computes dst[i] = expf(src[i] - mx) widened to float64 for the
// longest multiple-of-8 prefix the vector kernel can take, returning the
// float64 sum of the written values and the number of elements processed (0
// when no kernel is active — the caller's scalar path then covers the whole
// row, and always covers the tail). This is the softmax-row primitive: the
// max-subtracted arguments are ≤ 0, underflow flushes to zero, and the
// accumulation is float64 so the normalizer's precision does not degrade
// with domain size.
func ExpRow(dst []float64, src []float32, mx float32) (float64, int) {
	if len(dst) != len(src) {
		panic("tensor: ExpRow length mismatch")
	}
	head := len(src) &^ 7
	if head == 0 || !useFMA || !accelEnabled {
		return 0, 0
	}
	return expRowSumAVX2(&src[0], head, mx, &dst[0]), head
}
