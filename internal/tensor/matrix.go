// Package tensor provides the minimal dense linear-algebra substrate used by
// the neural-network packages: row-major float32 matrices, a cache-blocked and
// goroutine-parallel GEMM, and a handful of element-wise kernels.
//
// The package is deliberately small. It exists because this module is
// stdlib-only: there is no BLAS and no deep-learning framework to lean on, so
// every matrix product executed during Naru training and progressive sampling
// goes through this code.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix. Data has length Rows*Cols and
// element (r, c) lives at Data[r*Cols+c].
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for %d×%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randn fills the matrix with N(0, std²) samples drawn from rng.
func (m *Matrix) Randn(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// Uniform fills the matrix with Uniform(lo, hi) samples drawn from rng.
func (m *Matrix) Uniform(rng *rand.Rand, lo, hi float64) {
	for i := range m.Data {
		m.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Add accumulates other into m element-wise. Panics on shape mismatch.
func (m *Matrix) Add(other *Matrix) {
	m.mustMatch(other, "Add")
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// AddScaled accumulates s*other into m element-wise.
func (m *Matrix) AddScaled(other *Matrix, s float32) {
	m.mustMatch(other, "AddScaled")
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
}

// Mul multiplies m by other element-wise (Hadamard product).
func (m *Matrix) Mul(other *Matrix) {
	m.mustMatch(other, "Mul")
	for i, v := range other.Data {
		m.Data[i] *= v
	}
}

// MaxAbs returns the largest absolute element, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if a := float32(math.Abs(float64(v))); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

func (m *Matrix) mustMatch(other *Matrix, op string) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %d×%d vs %d×%d", op, m.Rows, m.Cols, other.Rows, other.Cols))
	}
}
