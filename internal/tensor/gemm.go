package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the approximate number of multiply-adds below which a
// product runs single-threaded; goroutine fan-out costs more than it saves on
// tiny matrices.
const parallelThreshold = 1 << 16

// ParallelFor splits [0, n) into contiguous chunks and runs fn on each chunk
// concurrently. fn receives half-open index ranges. It is exported so higher
// layers (batched sampling, workload execution) can reuse the same fan-out.
func ParallelFor(n int, fn func(start, end int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// packedMinWork is the multiply-add count above which packing B pays for
// itself; below it the pack pass dominates the product.
const packedMinWork = 1 << 15

// packedDensityCutoff is the nonzero fraction of A above which the dense
// packed kernel beats the sparse-skipping i-k-j kernel. One-hot encoded
// batches sit far below it; hidden activations sit above.
const packedDensityCutoff = 0.25

// simdDensityCutoff replaces packedDensityCutoff when the FMA micro-kernel is
// active: the vector kernel moves ~4× more elements per cycle than the scalar
// axpy, so skipping zeros only pays below a much smaller density. ReLU
// activations (~50% zero) land between the two cutoffs — naive for the scalar
// kernel, packed for the vector one.
const simdDensityCutoff = 1.0 / 16

// accelEnabled gates the kernel acceleration added with the training fast
// path: the FMA micro-kernels, the lowered density cutoff, and the packed
// MatMulTransA route. It exists so benchmarks can measure the legacy
// (pre-fast-path) kernel configuration in the same binary; it is not meant to
// be toggled while kernels are running.
var accelEnabled = true

// SetAccel enables or disables the accelerated kernel configuration and
// returns the previous setting. Only benchmarks measuring the sequential
// baseline should turn it off.
func SetAccel(on bool) bool {
	prev := accelEnabled
	accelEnabled = on
	return prev
}

// densityCutoff is the dispatch threshold matching the active micro-kernel.
func densityCutoff() float64 {
	if useFMA && accelEnabled {
		return simdDensityCutoff
	}
	return packedDensityCutoff
}

// MatMul computes C = A·B, or C += A·B when accumulate is true. A is m×k,
// B is k×n, C must be m×n. Large dense products are routed through the
// packed register-tiled kernel (packed.go); sparse or tiny ones fall back to
// the i-k-j ordering, which streams B and C row-wise and skips zero elements
// of A (one-hot inputs make A very sparse).
func MatMul(c, a, b *Matrix, accumulate bool) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%d×%d)·(%d×%d)→(%d×%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if a.Rows >= packMR && a.Rows*a.Cols*b.Cols >= packedMinWork && density(a) >= densityCutoff() {
		pb := packPool.Get().(*PackedB)
		pb.Pack(b)
		MatMulPacked(c, a, pb, nil, false, accumulate)
		packPool.Put(pb)
		return
	}
	body := func(start, end int) {
		for i := start; i < end; i++ {
			ci := c.Data[i*c.Cols : (i+1)*c.Cols]
			if !accumulate {
				for j := range ci {
					ci[j] = 0
				}
			}
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			for k, aik := range ai {
				if aik == 0 {
					continue // one-hot inputs make A very sparse
				}
				bk := b.Data[k*b.Cols : (k+1)*b.Cols]
				axpy(aik, bk, ci)
			}
		}
	}
	if a.Rows*a.Cols*b.Cols < parallelThreshold {
		body(0, a.Rows)
		return
	}
	ParallelFor(a.Rows, body)
}

// MatMulTransB computes C = A·Bᵀ, or C += A·Bᵀ when accumulate is true.
// A is m×k, B is n×k, C must be m×n. Used for tied-embedding decoding
// (H·Eᵀ, §4.2 "embedding reuse") and for input gradients (dX = dY·Wᵀ when W
// is stored out×in... W here stored as in×out, so dX = dY·Wᵀ uses this).
func MatMulTransB(c, a, b *Matrix, accumulate bool) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch (%d×%d)·(%d×%d)ᵀ→(%d×%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	// The naive path cannot skip zeros (it computes full dot products), so
	// any large product benefits from the packed kernel; packing Bᵀ costs one
	// strided read of B, amortized over the row count of A.
	if a.Rows >= 2*packMR && a.Rows*a.Cols*b.Rows >= packedMinWork {
		pb := packPool.Get().(*PackedB)
		pb.PackTrans(b)
		MatMulPacked(c, a, pb, nil, false, accumulate)
		packPool.Put(pb)
		return
	}
	body := func(start, end int) {
		for i := start; i < end; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			ci := c.Data[i*c.Cols : (i+1)*c.Cols]
			for j := 0; j < b.Rows; j++ {
				bj := b.Data[j*b.Cols : (j+1)*b.Cols]
				s := dot(ai, bj)
				if accumulate {
					ci[j] += s
				} else {
					ci[j] = s
				}
			}
		}
	}
	if a.Rows*a.Cols*b.Rows < parallelThreshold {
		body(0, a.Rows)
		return
	}
	ParallelFor(a.Rows, body)
}

// MatMulTransA computes C = Aᵀ·B, or C += Aᵀ·B when accumulate is true.
// A is m×k, B is m×n, C must be k×n. This is the weight-gradient product
// (dW = Xᵀ·dY). Dense products route through the packed register-tiled
// kernel (one transpose of A, amortized over the O(m·k·n) product); sparse
// ones — the first layer's one-hot input against its output gradient — keep
// the zero-skipping kernel, parallelised over row-bands of C so workers never
// write the same cache line.
func MatMulTransA(c, a, b *Matrix, accumulate bool) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch (%d×%d)ᵀ·(%d×%d)→(%d×%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if accelEnabled && a.Cols >= packMR && a.Rows*a.Cols*b.Cols >= packedMinWork && density(a) >= densityCutoff() {
		at := transPool.Get().(*Matrix)
		transposeInto(at, a)
		pb := packPool.Get().(*PackedB)
		pb.Pack(b)
		MatMulPacked(c, at, pb, nil, false, accumulate)
		packPool.Put(pb)
		transPool.Put(at)
		return
	}
	body := func(start, end int) {
		if !accumulate {
			for k := start; k < end; k++ {
				ck := c.Data[k*c.Cols : (k+1)*c.Cols]
				for j := range ck {
					ck[j] = 0
				}
			}
		}
		for i := 0; i < a.Rows; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			bi := b.Data[i*b.Cols : (i+1)*b.Cols]
			for k := start; k < end; k++ {
				if aik := ai[k]; aik != 0 {
					axpy(aik, bi, c.Data[k*c.Cols:(k+1)*c.Cols])
				}
			}
		}
	}
	if a.Rows*a.Cols*b.Cols < parallelThreshold {
		body(0, a.Cols)
		return
	}
	ParallelFor(a.Cols, body)
}

// transPool recycles the Aᵀ scratch for MatMulTransA's packed route.
var transPool = sync.Pool{New: func() any { return new(Matrix) }}

// transposeInto writes srcᵀ into dst, resizing dst's storage as needed while
// reusing its capacity. It streams src row-major (sequential reads) and
// scatters down dst's columns, which is the cheaper direction for the
// row-major layout when src has many more rows than columns.
func transposeInto(dst, src *Matrix) {
	dst.Rows, dst.Cols = src.Cols, src.Rows
	need := src.Rows * src.Cols
	if cap(dst.Data) < need {
		dst.Data = make([]float32, need)
	}
	dst.Data = dst.Data[:need]
	for i := 0; i < src.Rows; i++ {
		row := src.Data[i*src.Cols : (i+1)*src.Cols]
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = v
		}
	}
}

// axpy computes y += a*x for equal-length slices. Long vectors go through the
// FMA kernel when available; the four-way unroll below gives the compiler
// independent chains to schedule otherwise.
func axpy(a float32, x, y []float32) {
	n := len(x)
	_ = y[n-1]
	if useFMA && accelEnabled && n >= 8 {
		axpyFMA(a, &x[0], &y[0], n)
		return
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// dot returns the inner product of equal-length slices.
func dot(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Dot exposes the unrolled inner product for other packages.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	return dot(x, y)
}

// Axpy exposes y += a*x for other packages.
func Axpy(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return
	}
	axpy(a, x, y)
}
