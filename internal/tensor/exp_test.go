package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestExpRowMatchesMathExp checks the vector exp kernel (when active) against
// float64 math.Exp over softmax-shaped inputs: max-subtracted, so arguments
// are ≤ 0 down to deep underflow.
func TestExpRowMatchesMathExp(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{8, 16, 64, 256} {
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64() * 30)
		}
		mx := src[0]
		for _, v := range src[1:] {
			if v > mx {
				mx = v
			}
		}
		dst := make([]float64, n)
		sum, head := ExpRow(dst, src, mx)
		if head == 0 {
			t.Skip("no vector exp kernel on this machine")
		}
		if head != n {
			t.Fatalf("n=%d: processed %d", n, head)
		}
		var wantSum float64
		for i, v := range src {
			want := math.Exp(float64(v - mx))
			if want < 2e-38 { // kernel flushes below float32 normal range
				want = 0
			}
			wantSum += dst[i]
			if d := math.Abs(dst[i] - want); want != 0 && d/want > 1e-6 {
				t.Fatalf("n=%d i=%d: got %g want %g", n, i, dst[i], want)
			} else if want == 0 && dst[i] != 0 {
				t.Fatalf("n=%d i=%d: got %g want flush to 0", n, i, dst[i])
			}
		}
		if d := math.Abs(sum - wantSum); d > 1e-9*math.Abs(wantSum) {
			t.Fatalf("n=%d: sum %g, elements add to %g", n, sum, wantSum)
		}
	}
}

// TestExpRowRejectsMismatch pins the length contract.
func TestExpRowRejectsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	ExpRow(make([]float64, 8), make([]float32, 9), 0)
}
