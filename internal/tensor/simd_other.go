//go:build !amd64

package tensor

// Non-amd64 builds use the portable Go micro-kernel exclusively.
const useFMA = false

func fmaTile8x8(a *float32, lda int, panel *float32, k int, tile *float32) {
	panic("tensor: fmaTile8x8 without amd64")
}

func fmaTile1x8(a *float32, panel *float32, k int, tile *float32) {
	panic("tensor: fmaTile1x8 without amd64")
}

func axpyFMA(alpha float32, x, y *float32, n int) {
	panic("tensor: axpyFMA without amd64")
}

func expRowSumAVX2(src *float32, n int, mx float32, dst *float64) float64 {
	panic("tensor: expRowSumAVX2 without amd64")
}
