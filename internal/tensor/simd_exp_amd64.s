//go:build amd64

#include "textflag.h"

// Constants for the 8-wide exp kernel, float32 broadcast via VBROADCASTSS.
// Cephes-style expf: n = floor(x*log2e + 0.5), r = x - n*C1 - n*C2 (ln2 split
// into an exactly-representable high part and a low correction), degree-6
// minimax polynomial for exp(r) on [-ln2/2, ln2/2], then a 2^n scale by
// integer addition into the exponent field. Inputs are max-subtracted logits
// (≤ 0); lanes below the underflow cutoff are masked to zero.
DATA expc<>+0(SB)/4, $0x3FB8AA3B  // log2(e)
DATA expc<>+4(SB)/4, $0x3F000000  // 0.5
DATA expc<>+8(SB)/4, $0x3F318000  // C1 = 0.693359375
DATA expc<>+12(SB)/4, $0xB95E8083 // C2 = -2.12194440e-4
DATA expc<>+16(SB)/4, $0x39506967 // p0 = 1.9875691500e-4
DATA expc<>+20(SB)/4, $0x3AB743CE // p1 = 1.3981999507e-3
DATA expc<>+24(SB)/4, $0x3C088908 // p2 = 8.3334519073e-3
DATA expc<>+28(SB)/4, $0x3D2AA9C1 // p3 = 4.1665795894e-2
DATA expc<>+32(SB)/4, $0x3E2AAAAA // p4 = 1.6666665459e-1
DATA expc<>+36(SB)/4, $0x3F000000 // p5 = 5.0000001201e-1
DATA expc<>+40(SB)/4, $0x3F800000 // 1.0
DATA expc<>+44(SB)/4, $0xC2AE0000 // underflow cutoff -87.0
GLOBL expc<>(SB), RODATA, $48

// func expRowSumAVX2(src *float32, n int, mx float32, dst *float64) float64
//
// dst[i] = expf(src[i] - mx) widened to float64 for i in [0, n); returns the
// float64 sum of the written values. n must be a multiple of 8 (caller
// handles the tail). The float64 accumulation keeps the softmax normalizer's
// precision independent of the domain size.
TEXT ·expRowSumAVX2(SB), NOSPLIT, $0-40
	MOVQ src+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ dst+24(FP), DI

	VBROADCASTSS mx+16(FP), Y15
	VBROADCASTSS expc<>+0(SB), Y14  // log2e
	VBROADCASTSS expc<>+4(SB), Y13  // 0.5
	VBROADCASTSS expc<>+8(SB), Y12  // C1
	VBROADCASTSS expc<>+12(SB), Y11 // C2
	VBROADCASTSS expc<>+40(SB), Y10 // 1.0
	VBROADCASTSS expc<>+44(SB), Y9  // cutoff

	VXORPD Y7, Y7, Y7 // f64 sum accumulator (low quad)
	VXORPD Y8, Y8, Y8 // f64 sum accumulator (high quad)

	XORQ CX, CX
exploop:
	CMPQ CX, DX
	JGE  expdone
	VMOVUPS (SI)(CX*4), Y0
	VSUBPS  Y15, Y0, Y0 // x = src - mx

	VCMPPS $13, Y9, Y0, Y6 // mask = x >= cutoff (GE_OS)

	// n = floor(x*log2e + 0.5)
	VMULPS   Y14, Y0, Y1
	VADDPS   Y13, Y1, Y1
	VROUNDPS $1, Y1, Y1 // floor

	// r = x - n*C1 - n*C2
	VMOVAPS     Y0, Y2
	VFNMADD231PS Y12, Y1, Y2
	VFNMADD231PS Y11, Y1, Y2

	// Horner: p = ((((p0*r+p1)*r+p2)*r+p3)*r+p4)*r+p5
	VBROADCASTSS expc<>+16(SB), Y3
	VBROADCASTSS expc<>+20(SB), Y4
	VFMADD213PS  Y4, Y2, Y3
	VBROADCASTSS expc<>+24(SB), Y4
	VFMADD213PS  Y4, Y2, Y3
	VBROADCASTSS expc<>+28(SB), Y4
	VFMADD213PS  Y4, Y2, Y3
	VBROADCASTSS expc<>+32(SB), Y4
	VFMADD213PS  Y4, Y2, Y3
	VBROADCASTSS expc<>+36(SB), Y4
	VFMADD213PS  Y4, Y2, Y3

	// f = (p*r)*r + r + 1
	VMULPS      Y2, Y3, Y3
	VFMADD213PS Y2, Y2, Y3
	VADDPS      Y10, Y3, Y3

	// scale by 2^n: add n to the exponent field
	VCVTPS2DQ Y1, Y1
	VPSLLD    $23, Y1, Y1
	VPADDD    Y1, Y3, Y3

	VANDPS Y6, Y3, Y3 // zero underflowed lanes

	// widen to float64, store, accumulate
	VCVTPS2PD     X3, Y4
	VEXTRACTF128 $1, Y3, X5
	VCVTPS2PD     X5, Y5
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VADDPD  Y4, Y7, Y7
	VADDPD  Y5, Y8, Y8

	ADDQ $64, DI
	ADDQ $8, CX
	JMP  exploop
expdone:
	// reduce the two quad accumulators to one scalar
	VADDPD       Y8, Y7, Y7
	VEXTRACTF128 $1, Y7, X8
	VADDPD       X8, X7, X7
	VHADDPD      X7, X7, X7
	VZEROUPPER
	MOVSD X7, ret+32(FP)
	RET
