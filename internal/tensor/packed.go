package tensor

import (
	"fmt"
	"sync"
)

// Packed, register-tiled GEMM. The naive i-k-j product in gemm.go streams B
// row by row and touches C once per (k, j) pair; profitable only when A is
// very sparse (one-hot encodings). For the dense products that dominate
// inference — hidden-layer activations times 128×128 weight blocks — the
// kernels below first pack B into contiguous column panels of width packNR,
// then drive a packMR×packNR micro-kernel whose accumulators live in
// registers, so each element of C is written exactly once and each panel of B
// is read sequentially for every row band of A. An optional epilogue fuses
// the bias add and ReLU into the same sweep, turning the three memory passes
// of Linear→bias→ReLU into one.

const (
	packMR = 8 // rows of A per micro-kernel invocation
	packNR = 8 // columns of B per panel: one YMM register on amd64
)

// PackedB is matrix B repacked for the micro-kernel: column panels of width
// packNR, each panel holding its K rows contiguously, zero-padded on the last
// panel. Packing costs O(K·N) and is amortized over the O(M·K·N) product.
type PackedB struct {
	K, N int
	data []float32
}

// panels returns the number of packNR-wide column panels.
func (pb *PackedB) panels() int { return (pb.N + packNR - 1) / packNR }

// reserve sizes the backing array for a K×N source, reusing capacity.
func (pb *PackedB) reserve(k, n int) {
	pb.K, pb.N = k, n
	need := pb.panels() * k * packNR
	if cap(pb.data) < need {
		pb.data = make([]float32, need)
	}
	pb.data = pb.data[:need]
}

// Pack fills pb from B (K×N, row-major), reusing pb's storage when possible.
func (pb *PackedB) Pack(b *Matrix) { pb.PackCols(b, 0) }

// PackCols fills pb from the column suffix B[:, j0:], so a product against pb
// yields only output columns j0 and up. This is the delta-forward primitive:
// degree-sorted masked layers change only a suffix of their units per
// sampling step, and packing just that suffix keeps the per-step GEMM
// proportional to the changed width.
func (pb *PackedB) PackCols(b *Matrix, j0 int) { pb.PackRange(b, 0, b.Rows, j0, b.Cols) }

// PackRange fills pb from the sub-block B[i0:i1, j0:j1). A product against the
// result consumes a K = i1-i0 operand and yields N = j1-j0 output columns.
// Row windows pack the K-prefix of a masked weight matrix (a head block whose
// mask admits only low-degree hidden units); column windows pack one
// degree band of a hidden layer. Both are packed once and cached by the model,
// which is what makes band-granular delta-forward refreshes cheap at any
// batch height.
func (pb *PackedB) PackRange(b *Matrix, i0, i1, j0, j1 int) {
	if i0 < 0 || i1 < i0 || i1 > b.Rows || j0 < 0 || j1 < j0 || j1 > b.Cols {
		panic(fmt.Sprintf("tensor: PackRange window [%d:%d,%d:%d) of %d×%d", i0, i1, j0, j1, b.Rows, b.Cols))
	}
	pb.reserve(i1-i0, j1-j0)
	k, stride, n := pb.K, b.Cols, pb.N
	for p := 0; p < pb.panels(); p++ {
		pj := p * packNR
		nj := n - pj
		if nj > packNR {
			nj = packNR
		}
		dst := pb.data[p*k*packNR:]
		for r := 0; r < k; r++ {
			src := b.Data[(i0+r)*stride+j0+pj:]
			d := dst[r*packNR : r*packNR+packNR]
			for j := 0; j < nj; j++ {
				d[j] = src[j]
			}
			for j := nj; j < packNR; j++ {
				d[j] = 0
			}
		}
	}
}

// PackTrans fills pb with Bᵀ: the logical operand is the transpose of the
// stored n×k matrix b, so panel column j is row j0+j of b. This is the decode
// and dX=dY·Wᵀ layout, replacing MatMulTransB's per-element dot products.
func (pb *PackedB) PackTrans(b *Matrix) {
	pb.reserve(b.Cols, b.Rows)
	k, n := b.Cols, b.Rows // logical dims of Bᵀ
	for p := 0; p < pb.panels(); p++ {
		j0 := p * packNR
		nj := n - j0
		if nj > packNR {
			nj = packNR
		}
		dst := pb.data[p*k*packNR:]
		for j := 0; j < nj; j++ {
			src := b.Data[(j0+j)*k : (j0+j+1)*k]
			for r := 0; r < k; r++ {
				dst[r*packNR+j] = src[r]
			}
		}
		if nj < packNR {
			for r := 0; r < k; r++ {
				for j := nj; j < packNR; j++ {
					dst[r*packNR+j] = 0
				}
			}
		}
	}
}

// packPool recycles pack buffers for the transient packings done inside
// MatMul/MatMulTransB dispatch, keeping the fast path allocation-free.
var packPool = sync.Pool{New: func() any { return new(PackedB) }}

// MatMulPacked computes C = A·B from a pre-packed B, with an optional fused
// epilogue: when bias is non-nil it is broadcast-added to every row, and when
// relu is true negative results are clamped to zero in the same sweep.
// accumulate adds into C instead of overwriting; it cannot be combined with
// the epilogue (no caller needs that, and the combination is ambiguous).
func MatMulPacked(c, a *Matrix, pb *PackedB, bias []float32, relu, accumulate bool) {
	if c.Cols != pb.N {
		panic(fmt.Sprintf("tensor: MatMulPacked C has %d columns, packed B has %d", c.Cols, pb.N))
	}
	matMulPackedAt(c, a, pb, bias, relu, accumulate, 0)
}

// matMulPackedAt writes the product into the column window C[:, cOff:cOff+pb.N],
// leaving the columns outside the window untouched. bias, when present, covers
// just the window (pb.N entries).
func matMulPackedAt(c, a *Matrix, pb *PackedB, bias []float32, relu, accumulate bool, cOff int) {
	if a.Cols != pb.K || c.Rows != a.Rows || cOff < 0 || cOff+pb.N > c.Cols {
		panic(fmt.Sprintf("tensor: MatMulPacked shape mismatch (%d×%d)·(%d×%d)→(%d×%d)+%d",
			a.Rows, a.Cols, pb.K, pb.N, c.Rows, c.Cols, cOff))
	}
	if accumulate && (bias != nil || relu) {
		panic("tensor: MatMulPacked cannot combine accumulate with a bias/ReLU epilogue")
	}
	if bias != nil && len(bias) != pb.N {
		panic(fmt.Sprintf("tensor: MatMulPacked bias length %d for %d columns", len(bias), pb.N))
	}
	// The serial branch calls packedBody directly: creating the closure first
	// would heap-allocate it even when ParallelFor is never reached (it
	// escapes into the goroutine path), and the block-sampling walk relies on
	// sub-threshold products being allocation-free.
	if a.Rows*a.Cols*pb.N < parallelThreshold {
		packedBody(c, a, a.Cols, pb, bias, relu, accumulate, cOff, 0, a.Rows)
		return
	}
	ParallelFor(a.Rows, func(start, end int) {
		packedBody(c, a, a.Cols, pb, bias, relu, accumulate, cOff, start, end)
	})
}

// MatMulPackedWindow exposes the column-window product C[:, cOff:cOff+pb.N] =
// A·B (or += with accumulate) against a caller-held packed operand. It is the
// cached-pack counterpart of LinearReLUCols: the model packs a weight band
// once and replays it every sampling step without the per-call pack pass.
func MatMulPackedWindow(c, a *Matrix, pb *PackedB, bias []float32, relu, accumulate bool, cOff int) {
	matMulPackedAt(c, a, pb, bias, relu, accumulate, cOff)
}

// MatMulPackedPrefix computes C[:, cOff:cOff+pb.N] = A[:, :pb.K]·B from a
// pre-packed B whose K dimension is a prefix of A's columns (pb.K ≤ A.Cols).
// Masked output heads read only the hidden units whose degree admits their
// column — a prefix under degree sorting — so packing just those pb.K weight
// rows and walking A with its full row stride skips the provably-zero tail of
// the dot product while producing bit-identical sums (the skipped terms are
// exact zeros appended after the same-order prefix accumulation).
func MatMulPackedPrefix(c, a *Matrix, pb *PackedB, bias []float32, relu, accumulate bool, cOff int) {
	if a.Cols < pb.K || c.Rows != a.Rows || cOff < 0 || cOff+pb.N > c.Cols {
		panic(fmt.Sprintf("tensor: MatMulPackedPrefix shape mismatch (%d×%d)·(%d×%d)→(%d×%d)+%d",
			a.Rows, a.Cols, pb.K, pb.N, c.Rows, c.Cols, cOff))
	}
	if accumulate && (bias != nil || relu) {
		panic("tensor: MatMulPackedPrefix cannot combine accumulate with a bias/ReLU epilogue")
	}
	if bias != nil && len(bias) != pb.N {
		panic(fmt.Sprintf("tensor: MatMulPackedPrefix bias length %d for %d columns", len(bias), pb.N))
	}
	if pb.K == 0 {
		// Degenerate prefix: the product contributes nothing; only the
		// epilogue (bias broadcast, ReLU clamp, or nothing for accumulate)
		// remains.
		for i := 0; i < c.Rows; i++ {
			dst := c.Data[i*c.Cols+cOff : i*c.Cols+cOff+pb.N]
			switch {
			case accumulate:
			case bias != nil && relu:
				for j := range dst {
					v := bias[j]
					if v < 0 {
						v = 0
					}
					dst[j] = v
				}
			case bias != nil:
				copy(dst, bias)
			case relu:
				for j := range dst {
					dst[j] = 0
				}
			default:
				for j := range dst {
					dst[j] = 0
				}
			}
		}
		return
	}
	// Serial branch first, closure only on the parallel path — same
	// allocation-free contract as matMulPackedAt.
	if a.Rows*pb.K*pb.N < parallelThreshold {
		packedBody(c, a, a.Cols, pb, bias, relu, accumulate, cOff, 0, a.Rows)
		return
	}
	ParallelFor(a.Rows, func(start, end int) {
		packedBody(c, a, a.Cols, pb, bias, relu, accumulate, cOff, start, end)
	})
}

// packedBody runs the micro-kernel over rows [start, end) of A, reading the
// first pb.K entries of each lda-strided row (lda = A.Cols for full-width
// products, larger K-prefix reads otherwise). On amd64 with AVX2+FMA the tile
// inner product runs in assembly (simd_amd64.s); elsewhere a portable Go tile
// computes the same sums without fused rounding.
func packedBody(c, a *Matrix, lda int, pb *PackedB, bias []float32, relu, accumulate bool, cOff, start, end int) {
	k, n := pb.K, pb.N
	nPanels := pb.panels()
	var tile [packMR * packNR]float32
	i := start
	if useFMA && accelEnabled && k > 0 {
		for ; i+packMR <= end; i += packMR {
			aBand := &a.Data[i*lda]
			for p := 0; p < nPanels; p++ {
				j0 := p * packNR
				nj := n - j0
				if nj > packNR {
					nj = packNR
				}
				fmaTile8x8(aBand, lda, &pb.data[p*k*packNR], k, &tile[0])
				storeTile(c, tile[:], i, packMR, cOff+j0, j0, nj, bias, relu, accumulate)
			}
		}
		for ; i < end; i++ {
			ai := &a.Data[i*lda]
			for p := 0; p < nPanels; p++ {
				j0 := p * packNR
				nj := n - j0
				if nj > packNR {
					nj = packNR
				}
				fmaTile1x8(ai, &pb.data[p*k*packNR], k, &tile[0])
				storeTile(c, tile[:], i, 1, cOff+j0, j0, nj, bias, relu, accumulate)
			}
		}
		return
	}
	for ; i < end; i++ {
		ai := a.Data[i*lda : i*lda+k]
		for p := 0; p < nPanels; p++ {
			j0 := p * packNR
			nj := n - j0
			if nj > packNR {
				nj = packNR
			}
			panel := pb.data[p*k*packNR : (p*k+k)*packNR]
			var acc [packNR]float32
			for kk := 0; kk < k; kk++ {
				v := ai[kk]
				pr := panel[kk*packNR : kk*packNR+packNR]
				acc[0] += v * pr[0]
				acc[1] += v * pr[1]
				acc[2] += v * pr[2]
				acc[3] += v * pr[3]
				acc[4] += v * pr[4]
				acc[5] += v * pr[5]
				acc[6] += v * pr[6]
				acc[7] += v * pr[7]
			}
			copy(tile[:packNR], acc[:])
			storeTile(c, tile[:], i, 1, cOff+j0, j0, nj, bias, relu, accumulate)
		}
	}
}

// storeTile writes an mr×nj register tile into C at (i0, cj0), applying the
// epilogue; j0 indexes the tile's columns within the packed operand (and its
// bias), which differ from C's columns when the product targets a window.
func storeTile(c *Matrix, tile []float32, i0, mr, cj0, j0, nj int, bias []float32, relu, accumulate bool) {
	for r := 0; r < mr; r++ {
		dst := c.Data[(i0+r)*c.Cols+cj0 : (i0+r)*c.Cols+cj0+nj]
		src := tile[r*packNR : r*packNR+nj]
		switch {
		case accumulate:
			for j := range dst {
				dst[j] += src[j]
			}
		case bias != nil && relu:
			for j := range dst {
				v := src[j] + bias[j0+j]
				if v < 0 {
					v = 0
				}
				dst[j] = v
			}
		case bias != nil:
			for j := range dst {
				dst[j] = src[j] + bias[j0+j]
			}
		case relu:
			for j := range dst {
				v := src[j]
				if v < 0 {
					v = 0
				}
				dst[j] = v
			}
		default:
			copy(dst, src)
		}
	}
}

// LinearReLU computes C = A·B + bias with an optional fused ReLU in a single
// sweep over C, packing B into a pooled buffer. This is the inference-path
// primitive behind nn.Linear: one call replaces MatMul + bias Axpy + ReLU.
func LinearReLU(c, a, b *Matrix, bias []float32, relu bool) {
	pb := packPool.Get().(*PackedB)
	pb.Pack(b)
	MatMulPacked(c, a, pb, bias, relu, false)
	packPool.Put(pb)
}

// LinearReLUCols computes only the column window C[:, j0:] = A·B[:, j0:] +
// bias[j0:] (optionally ReLU-fused), leaving columns below j0 untouched. C and
// bias span B's full column count; j0 = 0 degenerates to LinearReLU and
// j0 >= B.Cols is a no-op. Delta-forward sampling uses this to refresh just
// the suffix of hidden units whose degree admits the newly revealed column.
func LinearReLUCols(c, a, b *Matrix, bias []float32, relu bool, j0 int) {
	if j0 <= 0 {
		LinearReLU(c, a, b, bias, relu)
		return
	}
	if j0 >= b.Cols {
		return
	}
	pb := packPool.Get().(*PackedB)
	pb.PackCols(b, j0)
	var bw []float32
	if bias != nil {
		bw = bias[j0:]
	}
	matMulPackedAt(c, a, pb, bw, relu, false, j0)
	packPool.Put(pb)
}

// LinearReLUBand computes only the column band C[:, j0:j1) = A·B[:, j0:j1) +
// bias[j0:j1) (optionally ReLU-fused), leaving columns outside the band
// untouched. Unlike LinearReLUCols this refreshes an interior window, which is
// what a degree band of a masked hidden layer is: the units whose degree sits
// strictly between two adjacent sampling steps.
func LinearReLUBand(c, a, b *Matrix, bias []float32, relu bool, j0, j1 int) {
	if j0 >= j1 {
		return
	}
	pb := packPool.Get().(*PackedB)
	pb.PackRange(b, 0, b.Rows, j0, j1)
	var bw []float32
	if bias != nil {
		bw = bias[j0:j1]
	}
	matMulPackedAt(c, a, pb, bw, relu, false, j0)
	packPool.Put(pb)
}

// densitySamples bounds how many elements density inspects, so the dispatch
// decision costs O(1) instead of scaling with the operand.
const densitySamples = 2048

// density estimates the fraction of nonzero entries of A, the dispatch signal
// between the sparse-skipping naive kernel and the packed dense kernel. Large
// matrices are probed at a fixed stride derived only from the shape, so the
// decision is deterministic for a given operand and its cost stops growing
// with A's size. The stride is nudged off multiples of the row length:
// structured sparsity (one-hot blocks at fixed column offsets) would
// otherwise be sampled column-aligned and misread.
func density(a *Matrix) float64 {
	n := len(a.Data)
	if n == 0 {
		return 0
	}
	stride := 1
	if n > densitySamples {
		stride = n / densitySamples
		if a.Cols > 1 && stride%a.Cols == 0 {
			stride++
		}
	}
	nz, seen := 0, 0
	for i := 0; i < n; i += stride {
		seen++
		if a.Data[i] != 0 {
			nz++
		}
	}
	return float64(nz) / float64(seen)
}
