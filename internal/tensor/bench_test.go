package tensor

import (
	"math/rand"
	"testing"
)

func benchMatPair(m, k, n int) (*Matrix, *Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(1))
	a, b := New(m, k), New(k, n)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	return New(m, n), a, b
}

func BenchmarkMatMul128(b *testing.B) {
	c, x, y := benchMatPair(128, 128, 128)
	b.SetBytes(int64(128 * 128 * 128 * 4))
	for i := 0; i < b.N; i++ {
		MatMul(c, x, y, false)
	}
}

func BenchmarkMatMul512x256(b *testing.B) {
	c, x, y := benchMatPair(512, 256, 512)
	for i := 0; i < b.N; i++ {
		MatMul(c, x, y, false)
	}
}

func BenchmarkMatMulOneHotSparse(b *testing.B) {
	// One-hot-ish input: MatMul skips zero entries; measure the fast path.
	rng := rand.New(rand.NewSource(2))
	a := New(256, 530)
	for r := 0; r < 256; r++ {
		for j := 0; j < 11; j++ {
			a.Set(r, rng.Intn(530), 1)
		}
	}
	w := New(530, 256)
	w.Randn(rng, 1)
	c := New(256, 256)
	for i := 0; i < b.N; i++ {
		MatMul(c, a, w, false)
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(512, 256)
	x.Randn(rng, 1)
	dy := New(512, 128)
	dy.Randn(rng, 1)
	dw := New(256, 128)
	for i := 0; i < b.N; i++ {
		MatMulTransA(dw, x, dy, false)
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	h := New(1000, 64)
	h.Randn(rng, 1)
	e := New(1900, 64) // embedding-reuse decode shape
	e.Randn(rng, 1)
	lg := New(1000, 1900)
	for i := 0; i < b.N; i++ {
		MatMulTransB(lg, h, e, false)
	}
}

func BenchmarkMatMulTransAAccumulate(b *testing.B) {
	// The weight-gradient shape of a 256-wide hidden layer over a 512-row
	// batch, accumulate mode — the exact call Linear.Backward makes. Dense A
	// routes through the packed kernel.
	rng := rand.New(rand.NewSource(5))
	x := New(512, 256)
	x.Randn(rng, 1)
	dy := New(512, 256)
	dy.Randn(rng, 1)
	dw := New(256, 256)
	for i := 0; i < b.N; i++ {
		MatMulTransA(dw, x, dy, true)
	}
}

func BenchmarkMatMulTransAOneHot(b *testing.B) {
	// First-layer weight gradient: A is the one-hot/embedded encoding, very
	// sparse, so dispatch must keep the zero-skipping kernel.
	rng := rand.New(rand.NewSource(6))
	x := New(512, 530)
	for r := 0; r < 512; r++ {
		for j := 0; j < 11; j++ {
			x.Set(r, rng.Intn(530), 1)
		}
	}
	dy := New(512, 256)
	dy.Randn(rng, 1)
	dw := New(530, 256)
	for i := 0; i < b.N; i++ {
		MatMulTransA(dw, x, dy, true)
	}
}

func BenchmarkMatMulTransAEmbedGrad(b *testing.B) {
	// dE += dLogitsᵀ·Block for a 1900-value embedded column: the dominant
	// gradient product of batched embedding-reuse decoding.
	rng := rand.New(rand.NewSource(7))
	dlg := New(512, 1900)
	dlg.Randn(rng, 1)
	blk := New(512, 64)
	blk.Randn(rng, 1)
	de := New(1900, 64)
	for i := 0; i < b.N; i++ {
		MatMulTransA(de, dlg, blk, true)
	}
}

func BenchmarkDensity(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a := New(512, 722)
	a.Randn(rng, 1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += density(a)
	}
	_ = sink
}

func BenchmarkDot(b *testing.B) {
	x := make([]float32, 1024)
	y := make([]float32, 1024)
	for i := range x {
		x[i], y[i] = float32(i), float32(1024-i)
	}
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}

func BenchmarkAxpy(b *testing.B) {
	x := make([]float32, 1024)
	y := make([]float32, 1024)
	for i := range x {
		x[i] = float32(i)
	}
	for i := 0; i < b.N; i++ {
		Axpy(0.001, x, y)
	}
}
