//go:build amd64

#include "textflag.h"

// func fmaTile8x8(a *float32, lda int, panel *float32, k int, tile *float32)
//
// tile[r*8+j] = sum over kk of a[r*lda+kk] * panel[kk*8+j], r,j in 0..7.
// Accumulators Y0..Y7 (one YMM per output row), panel row in Y8, broadcast
// scalar in Y9. Row pointers live in R8..R15 and are indexed by kk*4.
TEXT ·fmaTile8x8(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), AX
	MOVQ lda+8(FP), BX
	SHLQ $2, BX // row stride in bytes
	MOVQ panel+16(FP), SI
	MOVQ k+24(FP), DX
	MOVQ tile+32(FP), DI

	MOVQ AX, R8
	LEAQ (AX)(BX*1), R9
	LEAQ (R9)(BX*1), R10
	LEAQ (R10)(BX*1), R11
	LEAQ (R11)(BX*1), R12
	LEAQ (R12)(BX*1), R13
	LEAQ (R13)(BX*1), R14
	LEAQ (R14)(BX*1), R15

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	XORQ CX, CX
loop8:
	CMPQ CX, DX
	JGE  done8
	VMOVUPS (SI), Y8
	VBROADCASTSS (R8)(CX*4), Y9
	VFMADD231PS Y8, Y9, Y0
	VBROADCASTSS (R9)(CX*4), Y9
	VFMADD231PS Y8, Y9, Y1
	VBROADCASTSS (R10)(CX*4), Y9
	VFMADD231PS Y8, Y9, Y2
	VBROADCASTSS (R11)(CX*4), Y9
	VFMADD231PS Y8, Y9, Y3
	VBROADCASTSS (R12)(CX*4), Y9
	VFMADD231PS Y8, Y9, Y4
	VBROADCASTSS (R13)(CX*4), Y9
	VFMADD231PS Y8, Y9, Y5
	VBROADCASTSS (R14)(CX*4), Y9
	VFMADD231PS Y8, Y9, Y6
	VBROADCASTSS (R15)(CX*4), Y9
	VFMADD231PS Y8, Y9, Y7
	ADDQ $32, SI
	INCQ CX
	JMP  loop8
done8:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VMOVUPS Y4, 128(DI)
	VMOVUPS Y5, 160(DI)
	VMOVUPS Y6, 192(DI)
	VMOVUPS Y7, 224(DI)
	VZEROUPPER
	RET

// func fmaTile1x8(a *float32, panel *float32, k int, tile *float32)
//
// tile[j] = sum over kk of a[kk] * panel[kk*8+j]. Single-row remainder kernel.
TEXT ·fmaTile1x8(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), R8
	MOVQ panel+8(FP), SI
	MOVQ k+16(FP), DX
	MOVQ tile+24(FP), DI
	VXORPS Y0, Y0, Y0
	XORQ CX, CX
loop1:
	CMPQ CX, DX
	JGE  done1
	VBROADCASTSS (R8)(CX*4), Y9
	VFMADD231PS (SI), Y9, Y0
	ADDQ $32, SI
	INCQ CX
	JMP  loop1
done1:
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func axpyFMA(alpha float32, x, y *float32, n int)
//
// y[i] += alpha * x[i]. 8-wide FMA main loop with a scalar tail.
TEXT ·axpyFMA(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y2
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), DX
	XORQ CX, CX
	MOVQ DX, BX
	ANDQ $-8, BX // n rounded down to a multiple of 8
axloop:
	CMPQ CX, BX
	JGE  axtail
	VMOVUPS (SI)(CX*4), Y0
	VMOVUPS (DI)(CX*4), Y1
	VFMADD231PS Y0, Y2, Y1
	VMOVUPS Y1, (DI)(CX*4)
	ADDQ $8, CX
	JMP  axloop
axtail:
	CMPQ CX, DX
	JGE  axdone
	VMOVSS (SI)(CX*4), X0
	VMOVSS (DI)(CX*4), X1
	VFMADD231SS X0, X2, X1
	VMOVSS X1, (DI)(CX*4)
	INCQ CX
	JMP  axtail
axdone:
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
