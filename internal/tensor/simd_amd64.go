//go:build amd64

package tensor

// AVX2/FMA micro-kernels for the packed GEMM (simd_amd64.s). The panel layout
// (packNR floats per K step, contiguous) maps a panel row onto exactly one YMM
// register, so the inner product for a packMR×packNR tile is one vector load
// plus packMR broadcast-FMA pairs per K step.
//
// fmaTile8x8 computes tile[r*8+j] = Σ_kk a[r*lda+kk] * panel[kk*8+j] for an
// 8-row band; fmaTile1x8 is the single-row remainder. Both fully overwrite
// tile. The FMA contraction rounds once per multiply-add, so results can
// differ from the pure-Go fallback in the last bit — every run on the same
// machine takes the same path, which is what the determinism contract
// (bit-reproducibility for fixed inputs on one host) requires.

//go:noescape
func fmaTile8x8(a *float32, lda int, panel *float32, k int, tile *float32)

//go:noescape
func fmaTile1x8(a *float32, panel *float32, k int, tile *float32)

//go:noescape
func axpyFMA(alpha float32, x, y *float32, n int)

//go:noescape
func expRowSumAVX2(src *float32, n int, mx float32, dst *float64) float64

func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

// useFMA gates the assembly micro-kernels on AVX2+FMA with OS-enabled YMM
// state; anything else falls back to the portable Go tile.
var useFMA = detectFMA()

func detectFMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avxBit = 1 << 28
	const fmaBit = 1 << 12
	if ecx1&osxsave == 0 || ecx1&avxBit == 0 || ecx1&fmaBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 { // XMM and YMM state saved by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}
