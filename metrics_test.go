package naru

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestConfigMetricsEndToEnd wires a registry through the facade: Build feeds
// it training telemetry, the estimator feeds it serving telemetry, and
// MetricsHandler exposes both families over HTTP.
func TestConfigMetricsEndToEnd(t *testing.T) {
	tbl := facadeTable(t, 800)
	cfg := DefaultConfig()
	cfg.HiddenSizes = []int{16, 16}
	cfg.Epochs = 1
	cfg.Samples = 100
	cfg.Seed = 9
	cfg.Metrics = NewMetrics()
	est, err := Build(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.Metrics() != cfg.Metrics {
		t.Fatal("Build did not attach Config.Metrics to the estimator")
	}
	if _, err := est.Selectivity(Query{Preds: []Predicate{{Col: 0, Op: OpLe, Code: 3}}}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(MetricsHandler(cfg.Metrics))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"naru_train_steps_total", "naru_train_epoch_nll",
		"naru_queries_total", "naru_query_latency_seconds_count",
	} {
		if !strings.Contains(string(body), family) {
			t.Fatalf("/metrics missing %s:\n%s", family, body)
		}
	}

	snap := cfg.Metrics.Snapshot()
	if snap.Counters["naru_queries_total"] != 1 {
		t.Fatalf("naru_queries_total = %d, want 1", snap.Counters["naru_queries_total"])
	}
	if snap.Counters["naru_train_steps_total"] == 0 {
		t.Fatal("training recorded no steps")
	}
}

// TestFallbackObservedCounts: the instrumented fallback reports its calls
// under the estimator_postgres_* family and estimates like the plain one.
func TestFallbackObservedCounts(t *testing.T) {
	tbl := facadeTable(t, 600)
	m := NewMetrics()
	fb := FallbackObserved(tbl, m)
	plain := Fallback(tbl)
	reg, err := Compile(Query{Preds: []Predicate{{Col: 1, Op: OpGe, Code: 2}}}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fb(reg), plain(reg); got != want {
		t.Fatalf("observed fallback %v != plain %v", got, want)
	}
	if got := m.Snapshot().Counters["estimator_postgres_calls_total"]; got != 1 {
		t.Fatalf("estimator_postgres_calls_total = %d, want 1", got)
	}
}
