package naru

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func breakerFixture(t *testing.T) (*Estimator, *Table, *Metrics) {
	t.Helper()
	tbl := facadeTable(t, 1200)
	cfg := fusedConfig()
	reg := NewMetrics()
	cfg.Metrics = reg
	return NewFromModel(fusedModel(tbl), tbl, cfg), tbl, reg
}

// failed builds a model-path failure result (the kind that must extend the
// breaker's streak).
func failed(err error) Result {
	return Result{Source: SourceFailed, Err: err}
}

// TestBreakerTripsAtThreshold: exactly Threshold consecutive model-path
// failures open the breaker; one fewer does not.
func TestBreakerTripsAtThreshold(t *testing.T) {
	est, _, reg := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{Threshold: 3})
	defer b.Close()

	b.Observe(failed(errors.New("boom")))
	b.Observe(failed(errors.New("boom")))
	if !b.Allow() || b.State() != StateHealthy {
		t.Fatalf("tripped below threshold: state %v", b.State())
	}
	b.Observe(failed(errors.New("boom")))
	if b.Allow() || b.State() != StateFallbackOnly {
		t.Fatalf("did not trip at threshold: state %v", b.State())
	}
	if got := reg.Counter("naru_breaker_trips_total").Value(); got != 1 {
		t.Fatalf("trips counter %d, want 1", got)
	}
	if got := reg.Gauge("naru_serve_state").Value(); got != float64(StateFallbackOnly) {
		t.Fatalf("state gauge %v, want %v", got, float64(StateFallbackOnly))
	}
}

// TestBreakerModelAnswerResetsStreak: a model answer between failures resets
// the consecutive count — only an unbroken streak trips.
func TestBreakerModelAnswerResetsStreak(t *testing.T) {
	est, _, _ := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{Threshold: 3})
	defer b.Close()
	for i := 0; i < 5; i++ {
		b.Observe(failed(errors.New("boom")))
		b.Observe(failed(errors.New("boom")))
		b.Observe(Result{Source: SourceModel})
	}
	if b.State() != StateHealthy {
		t.Fatalf("interleaved failures tripped: state %v", b.State())
	}
}

// TestBreakerIgnoresNonModelFailures: sheds, breaker rejections, and client
// cancellations are back-pressure or client behavior, never evidence the
// model is broken — an unbounded run of them must not trip.
func TestBreakerIgnoresNonModelFailures(t *testing.T) {
	est, _, _ := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{Threshold: 2})
	defer b.Close()
	for i := 0; i < 20; i++ {
		b.Observe(failed(ErrShed))
		b.Observe(failed(ErrBreakerOpen))
		b.Observe(failed(context.Canceled))
		b.Observe(failed(errors.Join(ErrShed, errors.New("compile"))))
	}
	if b.State() != StateHealthy {
		t.Fatalf("non-model failures tripped: state %v", b.State())
	}
}

// TestBreakerDegradedTransitions: degraded answers mark Degraded without
// touching the streak; a full model answer restores Healthy. Both states are
// Ready — the replica keeps taking traffic.
func TestBreakerDegradedTransitions(t *testing.T) {
	est, _, _ := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{Threshold: 3})
	defer b.Close()
	b.Observe(Result{Source: SourceDegraded})
	if b.State() != StateDegraded || !b.State().Ready() || !b.Allow() {
		t.Fatalf("degraded answer: state %v", b.State())
	}
	b.Observe(Result{Source: SourceModel})
	if b.State() != StateHealthy {
		t.Fatalf("model answer did not restore Healthy: state %v", b.State())
	}
}

// TestBreakerProbeRecovery: a tripped breaker probes its way back — failures
// back off, the first success closes the breaker to Healthy and counts a
// recovery.
func TestBreakerProbeRecovery(t *testing.T) {
	est, _, reg := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{
		Threshold:        1,
		ProbeInterval:    2 * time.Millisecond,
		MaxProbeInterval: 10 * time.Millisecond,
		Seed:             7,
	})
	defer b.Close()
	var mu sync.Mutex
	attempts := 0
	b.Start(func(ctx context.Context) error {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if attempts < 3 {
			return errors.New("still broken")
		}
		return nil
	})
	b.Observe(failed(errors.New("boom")))
	if b.Allow() {
		t.Fatal("threshold 1 did not trip on first failure")
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.State() != StateHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered (state %v, %d probe attempts)", b.State(), attempts)
		}
		time.Sleep(time.Millisecond)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker still rejects")
	}
	if got := reg.Counter("naru_breaker_recoveries_total").Value(); got != 1 {
		t.Fatalf("recoveries counter %d, want 1", got)
	}
	if got := reg.Counter("naru_breaker_probes_total").Value(); got < 3 {
		t.Fatalf("probes counter %d, want >= 3", got)
	}

	// Trip again: the probe loop must wake for subsequent trips too.
	b.Observe(failed(errors.New("boom")))
	deadline = time.Now().Add(5 * time.Second)
	for b.State() != StateHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("second trip never recovered (state %v)", b.State())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBreakerDrainIsTerminal: Draining wins over every other transition —
// model answers, probe successes, and new trips cannot resurrect a draining
// replica, and readiness is false.
func TestBreakerDrainIsTerminal(t *testing.T) {
	est, _, _ := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{Threshold: 1, ProbeInterval: time.Millisecond})
	defer b.Close()
	b.Start(func(ctx context.Context) error { return nil })
	b.Drain()
	if b.State() != StateDraining || b.Allow() || b.State().Ready() {
		t.Fatalf("drain: state %v", b.State())
	}
	b.Observe(Result{Source: SourceModel})
	b.Observe(failed(errors.New("boom")))
	time.Sleep(10 * time.Millisecond) // give a stray probe success the chance to misbehave
	if b.State() != StateDraining {
		t.Fatalf("draining not terminal: state %v", b.State())
	}
}

// TestBreakerReject: rejected queries carry full provenance — the fallback
// answers with ErrBreakerOpen preserved, or SourceFailed without one — and
// land in the breaker path counter and trace ring.
func TestBreakerReject(t *testing.T) {
	est, tbl, reg := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{Threshold: 1})
	defer b.Close()
	q := Query{Preds: []Predicate{{Col: 0, Op: OpGe, Code: 1}}}

	res := b.Reject(q, Fallback(tbl))
	if res.Source != SourceFallback {
		t.Fatalf("reject with fallback: source %v (%v)", res.Source, res.Err)
	}
	if !errors.Is(res.Err, ErrBreakerOpen) {
		t.Fatalf("reject lost provenance: err %v", res.Err)
	}
	if res.Sel < 0 || res.Sel > 1 {
		t.Fatalf("reject selectivity %v outside [0,1]", res.Sel)
	}

	res = b.Reject(q, nil)
	if res.Source != SourceFailed || !errors.Is(res.Err, ErrBreakerOpen) {
		t.Fatalf("reject without fallback: %+v", res)
	}

	if got := reg.Counter("naru_query_path_breaker_total").Value(); got != 2 {
		t.Fatalf("breaker path counter %d, want 2", got)
	}
	traces := reg.Traces()
	found := 0
	for _, tr := range traces {
		if tr.Path == "breaker" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("breaker traces %d, want 2", found)
	}
}

// TestBreakerConcurrentObserve hammers Observe and State from many
// goroutines while the probe loop runs — the -race check for the state
// machine's atomics.
func TestBreakerConcurrentObserve(t *testing.T) {
	est, _, _ := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{Threshold: 5, ProbeInterval: time.Millisecond, Seed: 3})
	defer b.Close()
	b.Start(func(ctx context.Context) error { return nil })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					b.Observe(failed(errors.New("boom")))
				case 1:
					b.Observe(Result{Source: SourceModel})
				default:
					b.Allow()
					_ = b.State()
				}
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for b.State() == StateFallbackOnly {
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck open after concurrent load")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBreakerDrainCancelsBackoffSleep: a probe loop sleeping out a long
// backoff must exit the moment the breaker drains — Close cannot wait 30s for
// a jittered sleep to expire, and no probe may fire after drain.
func TestBreakerDrainCancelsBackoffSleep(t *testing.T) {
	est, _, _ := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{Threshold: 1, ProbeInterval: time.Hour})
	var probes atomic.Int32
	b.Start(func(ctx context.Context) error {
		probes.Add(1)
		return errors.New("still broken")
	})
	b.Observe(failed(errors.New("boom")))
	if b.Allow() {
		t.Fatal("threshold 1 did not trip")
	}
	// The probe loop is now asleep in its hour-long jittered backoff.
	time.Sleep(5 * time.Millisecond)
	b.Drain()
	done := make(chan struct{})
	go func() { b.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: drain did not cancel the backoff sleep")
	}
	if n := probes.Load(); n != 0 {
		t.Fatalf("%d probes fired during an hour-long backoff", n)
	}
	if b.State() != StateDraining {
		t.Fatalf("state %v after drain, want draining", b.State())
	}
}

// TestBreakerDrainCancelsInflightProbe: a probe that is mid-estimate when the
// breaker drains has its context cancelled instead of running a model query
// against a shutting-down server, and no further probe fires.
func TestBreakerDrainCancelsInflightProbe(t *testing.T) {
	est, _, _ := breakerFixture(t)
	b := est.NewBreaker(BreakerOptions{Threshold: 1, ProbeInterval: time.Millisecond})
	started := make(chan struct{})
	var startOnce sync.Once
	var probes atomic.Int32
	cancelled := make(chan error, 1)
	b.Start(func(ctx context.Context) error {
		probes.Add(1)
		startOnce.Do(func() { close(started) })
		// Block until drain cancels the probe context (or the generous
		// probe timeout proves it never happened).
		<-ctx.Done()
		cancelled <- ctx.Err()
		return ctx.Err()
	})
	b.Observe(failed(errors.New("boom")))
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("probe never started")
	}
	b.Drain()
	select {
	case err := <-cancelled:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("in-flight probe ended with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not cancel the in-flight probe context")
	}
	b.Close()
	after := probes.Load()
	time.Sleep(20 * time.Millisecond)
	if n := probes.Load(); n != after {
		t.Fatalf("probe fired after drain+close: %d -> %d", after, n)
	}
}
