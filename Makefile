# Convenience entry points; everything is plain `go` underneath.

.PHONY: build test check check-fault check-obs check-train check-lifecycle check-chaos check-serve check-join bench inference training join

build:
	go build ./...

test:
	go test ./...

# check runs static analysis and the tests under the race detector — the gate
# for the concurrent query-serving path.
check:
	./scripts/check.sh

# check-fault runs the fault-tolerance suite under -race (checkpoint/resume,
# corruption rejection, divergence rollback, disrupted serving) plus a short
# fuzz pass over the deserialization and query-parsing fuzz targets.
check-fault:
	./scripts/check.sh fault

# check-obs is the end-to-end observability smoke test: train, serve with
# -metrics-addr, estimate over HTTP, scrape /metrics, and verify that enabling
# metrics leaves estimates byte-identical.
check-obs:
	./scripts/check.sh obs

bench:
	go test -bench . -benchtime 1x -run xxx .

# check-lifecycle runs the model-lifecycle suite under -race (ingestion,
# drift, refresh/resume, registry corruption rejection, hot-swap bit-identity)
# plus a fuzz pass over the manifest loader and an online-ingestion smoke test
# against a live `naru serve` with lifecycle flags.
check-lifecycle:
	./scripts/check.sh lifecycle

# check-chaos is the fault-injection gate: breaker/recovery/heal suites under
# -race, then a live kill matrix over every registered fault site (crash with
# NARU_FAULTS="<site>=exit@1", restart, require self-heal + serving), an
# error matrix (recoverable injected errors must not kill the server), a
# breaker trip/auto-recover cycle over HTTP, a loud-failure negative test for
# unrecoverable registries, and a startup temp-file GC check.
check-chaos:
	./scripts/check.sh chaos

# check-serve is the multi-tenant serving gate: the internal/server suite and
# the coalescer/breaker regression tests under -race, then a live two-tenant
# `naru serve -tenants` smoke test (per-tenant routing and result caches, an
# append -> drift -> hot-swap cycle on one tenant that must leave the other
# untouched, tenant-labelled metrics on the shared scrape, legacy-route
# aliasing, aggregate /readyz). Also runs as the last step of `make check`.
check-serve:
	./scripts/check.sh serve

# check-train is the end-to-end training-determinism gate: two sharded runs
# must write byte-identical models, and an interrupted-then-resumed run must
# match the uninterrupted model byte-for-byte.
check-train:
	./scripts/check.sh train

# check-join is the multi-table join-estimation gate: the neurocard/join/
# scaled-estimate suites under -race, a CLI train/estimate -join smoke test,
# and the join benchmark run twice with a pinned worker count — bit-identical
# estimate digests, a PASS on the oracle-verified accuracy gate (median
# q-error <= 2, max <= 10 at S=2000), and a regression check that must trip
# on a doctored baseline.
check-join:
	./scripts/check.sh join

# join regenerates BENCH_join.json: join-estimate accuracy vs the nested-loop
# oracle, serving throughput, and sampler tuple rate.
join:
	go run ./cmd/narubench -quiet join

# inference regenerates BENCH_inference.json (github-action-benchmark format).
inference:
	go run ./cmd/narubench -quiet inference

# training regenerates BENCH_training.json: baseline vs batched vs sharded
# training throughput, step latency quantiles, and epoch-NLL agreement.
training:
	go run ./cmd/narubench -quiet training
