# Convenience entry points; everything is plain `go` underneath.

.PHONY: build test check bench inference

build:
	go build ./...

test:
	go test ./...

# check runs static analysis and the tests under the race detector — the gate
# for the concurrent query-serving path.
check:
	./scripts/check.sh

bench:
	go test -bench . -benchtime 1x -run xxx .

# inference regenerates BENCH_inference.json (github-action-benchmark format).
inference:
	go run ./cmd/narubench -quiet inference
