# Convenience entry points; everything is plain `go` underneath.

.PHONY: build test check check-fault check-obs bench inference

build:
	go build ./...

test:
	go test ./...

# check runs static analysis and the tests under the race detector — the gate
# for the concurrent query-serving path.
check:
	./scripts/check.sh

# check-fault runs the fault-tolerance suite under -race (checkpoint/resume,
# corruption rejection, divergence rollback, disrupted serving) plus a short
# fuzz pass over the deserialization and query-parsing fuzz targets.
check-fault:
	./scripts/check.sh fault

# check-obs is the end-to-end observability smoke test: train, serve with
# -metrics-addr, estimate over HTTP, scrape /metrics, and verify that enabling
# metrics leaves estimates byte-identical.
check-obs:
	./scripts/check.sh obs

bench:
	go test -bench . -benchtime 1x -run xxx .

# inference regenerates BENCH_inference.json (github-action-benchmark format).
inference:
	go run ./cmd/narubench -quiet inference
