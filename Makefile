# Convenience entry points; everything is plain `go` underneath.

.PHONY: build test check check-fault bench inference

build:
	go build ./...

test:
	go test ./...

# check runs static analysis and the tests under the race detector — the gate
# for the concurrent query-serving path.
check:
	./scripts/check.sh

# check-fault runs the fault-tolerance suite under -race (checkpoint/resume,
# corruption rejection, divergence rollback, disrupted serving) plus a short
# fuzz pass over the deserialization and query-parsing fuzz targets.
check-fault:
	./scripts/check.sh fault

bench:
	go test -bench . -benchtime 1x -run xxx .

# inference regenerates BENCH_inference.json (github-action-benchmark format).
inference:
	go run ./cmd/narubench -quiet inference
