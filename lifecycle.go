package naru

import (
	"context"
	"errors"
	"io"

	"repro/internal/core"
	"repro/internal/lifecycle"
)

// ErrLifecycleDisabled is returned by lifecycle facade methods (Append,
// RefreshCtx, Drift, ...) on an estimator without an attached lifecycle
// manager. Attach one via Config.Lifecycle at Build time or EnableLifecycle.
var ErrLifecycleDisabled = errors.New("naru: lifecycle not enabled (set Config.Lifecycle or call EnableLifecycle)")

// EnableLifecycle attaches a model-lifecycle manager to the estimator: t is
// the table snapshot the serving model was trained on (for a loaded
// estimator, the same data the saved model saw). The manager takes ownership
// of the snapshot — appends go through the estimator from here on. With
// RegistryDir set the serving model is persisted as the bootstrap version.
func (e *Estimator) EnableLifecycle(t *Table, lc LifecycleConfig) error {
	if e.lc != nil {
		return errors.New("naru: lifecycle already enabled")
	}
	cfg := e.cfg
	var reg *lifecycle.Registry
	if lc.RegistryDir != "" {
		var err error
		if reg, err = lifecycle.OpenRegistry(lc.RegistryDir); err != nil {
			return err
		}
	}
	e.obsMu.Lock()
	obsReg := e.obsReg
	e.obsMu.Unlock()
	mgr, err := lifecycle.NewManager(e.cur.Load().model, t, lifecycle.Config{
		NLLThreshold:    lc.NLLThreshold,
		TVDThreshold:    lc.TVDThreshold,
		MinDriftRows:    lc.MinDriftRows,
		RefreshAfter:    lc.RefreshAfter,
		RefreshEpochs:   lc.RefreshEpochs,
		BatchSize:       cfg.BatchSize,
		LR:              cfg.LR / 2,
		Seed:            cfg.Seed + 3,
		TrainWorkers:    cfg.TrainWorkers,
		CheckpointPath:  lc.CheckpointPath,
		CheckpointEvery: lc.CheckpointEvery,
		Rebuild: func(domains []int) (core.Trainable, error) {
			return newModel(domains, cfg)
		},
		Registry:    reg,
		AdoptActive: lc.AdoptRegistry,
		Obs:         obsReg,
	}, e)
	if err != nil {
		return err
	}
	e.lc = mgr
	return nil
}

// Lifecycle returns the attached lifecycle manager (nil when disabled), for
// operations beyond the facade: staged ingestion, snapshot access,
// ShouldRefresh polling.
func (e *Estimator) Lifecycle() *lifecycle.Manager { return e.lc }

// Append ingests string-rendered rows (one slice per row, one element per
// column, in schema order) into the lifecycle snapshot. Unseen values extend
// the column dictionaries without invalidating existing codes. The batch is
// transactional: any bad row rejects it whole. Returns rows appended.
func (e *Estimator) Append(rows [][]string) (int, error) {
	if e.lc == nil {
		return 0, ErrLifecycleDisabled
	}
	return e.lc.AppendValues(rows)
}

// AppendCodes ingests n rows of row-major dictionary codes; every code must
// already be in its column's dictionary. Returns rows appended.
func (e *Estimator) AppendCodes(codes []int32, n int) (int, error) {
	if e.lc == nil {
		return 0, ErrLifecycleDisabled
	}
	return e.lc.AppendCodes(codes, n)
}

// AppendCSV ingests header-less CSV records as one atomic batch; errors carry
// 1-based line numbers and column names. Returns rows appended.
func (e *Estimator) AppendCSV(r io.Reader) (int, error) {
	if e.lc == nil {
		return 0, ErrLifecycleDisabled
	}
	return e.lc.AppendCSV(r)
}

// Drift returns the lifecycle drift monitor's current staleness reading.
func (e *Estimator) Drift() (DriftStatus, error) {
	if e.lc == nil {
		return DriftStatus{}, ErrLifecycleDisabled
	}
	return e.lc.Drift(), nil
}

// RefreshCtx fine-tunes a private clone of the serving model on the grown
// lifecycle snapshot and hot-swaps the result in. It runs synchronously —
// call from a background goroutine for non-blocking operation; concurrent
// calls return lifecycle.ErrRefreshRunning. Cancelling ctx aborts between
// gradient steps, leaves serving untouched, and (with a checkpoint path
// configured) flushes the stopping point so the next refresh resumes from it.
func (e *Estimator) RefreshCtx(ctx context.Context) (*RefreshResult, error) {
	if e.lc == nil {
		return nil, ErrLifecycleDisabled
	}
	return e.lc.Refresh(ctx)
}

// Versions lists the lifecycle registry's model versions (nil without a
// lifecycle manager or registry).
func (e *Estimator) Versions() []VersionMeta {
	if e.lc == nil {
		return nil
	}
	return e.lc.Versions()
}
