package naru_test

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	naru "repro"
	"repro/internal/table"
)

// Example shows the complete flow: ingest, train, estimate. The output is
// data-dependent, so it is not asserted; see examples/quickstart for a
// runnable variant with assertions.
func Example() {
	// Ingest a small CSV.
	csv := "city,stars\nsf,5\nsf,4\nla,2\nla,2\nsf,5\n"
	tbl, err := naru.LoadCSV(strings.NewReader(csv), "checkins")
	if err != nil {
		log.Fatal(err)
	}

	// Train the unsupervised likelihood model.
	cfg := naru.DefaultConfig()
	cfg.HiddenSizes = []int{16}
	cfg.Epochs = 1
	cfg.BatchSize = 4
	est, err := naru.Build(tbl, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Estimate the selectivity of city = 'sf'.
	sfCode, _ := tbl.Cols[0].CodeOfString("sf")
	sel, err := est.Selectivity(naru.Query{Preds: []naru.Predicate{
		{Col: 0, Op: naru.OpEq, Code: sfCode},
	}})
	if err != nil {
		log.Fatal(err)
	}
	_ = sel // data-dependent; true value is 3/5
}

// ExampleEstimator_SelectivityDisjunction demonstrates OR queries via
// inclusion–exclusion.
func ExampleEstimator_SelectivityDisjunction() {
	b := table.NewBuilder("t", []string{"x"})
	for i := 0; i < 100; i++ {
		if err := b.AppendRow([]string{strconv.Itoa(i % 4)}); err != nil {
			log.Fatal(err)
		}
	}
	tbl, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := naru.DefaultConfig()
	cfg.HiddenSizes = []int{16}
	cfg.Epochs = 20
	cfg.BatchSize = 16
	est, err := naru.Build(tbl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// P(x=0 ∨ x=1) — each branch is 1/4, disjoint, so ≈ 1/2.
	sel, err := est.SelectivityDisjunction([]naru.Query{
		{Preds: []naru.Predicate{{Col: 0, Op: naru.OpEq, Code: 0}}},
		{Preds: []naru.Predicate{{Col: 0, Op: naru.OpEq, Code: 1}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("roughly a half: %v\n", sel > 0.35 && sel < 0.65)
	// Output: roughly a half: true
}
